//===- analysis/StaticCommutativity.h - SMT-free commutativity tier -------===//
///
/// \file
/// Decides conditional-commutativity queries a ~_phi b without the SMT
/// solver whenever constant folding and interval reasoning suffice. The
/// check builds the *same* proof obligations as the semantic tier — equal
/// guards and equal final values of the two symbolic compositions AB and BA
/// — and accepts only when each obligation formula is *statically unsat*:
///
///   phi /\ ¬(G_ab <-> G_ba)                     (guard agreement)
///   phi /\ G_ab /\ value_ab(v) != value_ba(v)   (for each written v)
///
/// Because the obligations are identical to the semantic tier's, a Commute
/// answer here implies the semantic answer for the same phi: the tier is a
/// sound filter, never a new source of reduction. Anything not provably
/// unsat is reported Unknown and falls through to SMT (or to a conservative
/// "no" when the solver is disabled).
///
/// TermManager canonicalization does most of the work: identical updates
/// (x := x+1 against x := x+1) make both compositions literally equal, and
/// conflicting lock acquires make both composed guards fold to false. The
/// interval decider mops up residual linear-arithmetic obligations.
///
//===----------------------------------------------------------------------===//

#ifndef SEQVER_ANALYSIS_STATICCOMMUTATIVITY_H
#define SEQVER_ANALYSIS_STATICCOMMUTATIVITY_H

#include "automata/Dfa.h"
#include "program/Program.h"

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace seqver {
namespace analysis {

class InvariantSource;

/// Decides whether a ground formula is unsatisfiable by constant structure
/// and interval propagation over its literal conjuncts. "true" is a proof;
/// "false" means undecided. Exposed for tests and the conflict relation.
bool staticallyUnsat(const smt::TermManager &TM, smt::Term Formula);

/// Relational unsat decider: builds one octagon over the formula's
/// variables and refines it with the literal conjuncts, so two-variable
/// obligations (x - y <= c chains) close where plain intervals cannot.
/// "true" is a proof; "false" means undecided. Formulas over more than
/// RelationalVarCap variables are not attempted (the DBM is quadratic).
bool staticallyUnsatRelational(const smt::TermManager &TM, smt::Term Formula);
constexpr size_t RelationalVarCap = 24;

/// Affine unsat decider: builds one Karr equality system over the
/// formula's variables, inserts the equality conjuncts, and reports unsat
/// when a (dis)equality conjunct contradicts the system — closing
/// obligations with non-unit coefficients (`total == 2*i`) that both the
/// interval and the octagon decider leave open. "true" is a proof; "false"
/// means undecided.
bool staticallyUnsatAffine(const smt::TermManager &TM, smt::Term Formula);
constexpr size_t AffineVarCap = 32;

/// Which tier settled a static commutativity query.
enum class StaticTierVerdict : uint8_t {
  Unknown,  ///< not provable statically; fall through to SMT
  Interval, ///< plain obligations statically unsat (sound filter of SMT)
  Octagon,  ///< obligations unsat only under the octagon location
            ///< invariants (a genuine strengthening of phi; see decide())
  Karr,     ///< obligations unsat only once the Karr affine equalities
            ///< are conjoined on top of the cheaper tiers' invariants
};

/// Statically proven independence between letters, precomputed for all
/// pairs: Algorithm 1's persistent-set construction consults this bitset
/// matrix instead of issuing per-pair commutativity queries.
class ConflictRelation {
public:
  ConflictRelation() = default;

  /// True when the pair was statically proven commuting (unconditionally).
  bool independent(automata::Letter A, automata::Letter B) const {
    return !Rows.empty() && Rows[A][B];
  }

  uint32_t numLetters() const { return static_cast<uint32_t>(Rows.size()); }

private:
  friend class StaticCommutativity;
  std::vector<std::vector<bool>> Rows;
};

class StaticCommutativity {
public:
  explicit StaticCommutativity(const prog::ConcurrentProgram &P)
      : P(P), TM(P.termManager()) {}

  /// True iff a ~_phi b is provable without the solver from phi alone (the
  /// interval tier; never consults location invariants). Phi == nullptr
  /// means phi = true. Precondition: different threads (callers dispatch
  /// same-thread pairs before any tier runs).
  bool provablyCommutes(smt::Term Phi, automata::Letter A,
                        automata::Letter B);

  /// Full static decision for a ~_phi b. First tries the plain interval
  /// tier (a sound filter of the SMT answer). When that is inconclusive
  /// and invariant sources are installed, retries the open obligations
  /// under phi /\ Inv(src(a)) /\ Inv(src(b)), conjoining each source's
  /// location invariants cumulatively in registry order; the source whose
  /// addition closes the last open obligation names the verdict.
  ///
  /// Soundness of the strengthening: commutativity is only ever applied to
  /// *adjacent* occurrences of a and b along an execution, and in the state
  /// from which the pair executes, thread(a) sits at src(a) and thread(b)
  /// at src(b) — so that state satisfies both location invariants, and
  /// conjoining them into every obligation context is sound. Unlike the
  /// interval tier these are genuine strengthenings of phi: an Octagon or
  /// Karr verdict may hold where SMT on the un-strengthened obligation
  /// would not, i.e. the tiers are a new source of reduction, not just a
  /// filter.
  StaticTierVerdict decide(smt::Term Phi, automata::Letter A,
                           automata::Letter B);

  /// Installs (or clears, with an empty list) the invariant sources
  /// consulted by decide(), in the order their invariants are conjoined
  /// (cheapest first; "karr" last by convention). Letters whose source
  /// location is not unique in the thread CFG get no invariant
  /// (conservative).
  void setInvariantContext(std::vector<const InvariantSource *> NewSources);

  /// All-pairs unconditional independence (syntactic disjointness or a
  /// static commutativity proof). Quadratic in the alphabet; computed once
  /// per verification run when persistent sets are enabled. Deliberately
  /// ignores the invariant context: the relation feeds the persistent-set
  /// construction, which wants location-independent independence.
  ConflictRelation conflictRelation();

  uint64_t numQueries() const { return Queries; }
  uint64_t numProofs() const { return Proofs; }
  /// Octagon-tier attempts (queries the interval tier left open while an
  /// octagon source was installed) and successes.
  uint64_t numOctQueries() const { return OctQueries; }
  uint64_t numOctProofs() const { return OctProofs; }
  /// Karr-tier attempts (queries still open after the octagon pass while a
  /// karr source was installed) and successes.
  uint64_t numKarrQueries() const { return KarrQueries; }
  uint64_t numKarrProofs() const { return KarrProofs; }

private:
  StaticTierVerdict decideImpl(smt::Term Phi, automata::Letter A,
                               automata::Letter B, bool WithInvariants);
  smt::Term invariantFor(const InvariantSource &S, automata::Letter L) const;

  const prog::ConcurrentProgram &P;
  smt::TermManager &TM;
  /// Invariant sources in strengthening order; empty = no invariant tiers.
  std::vector<const InvariantSource *> Sources;
  /// Letter -> unique (thread, source location), when unambiguous.
  std::vector<std::optional<std::pair<int, prog::Location>>> SrcOf;
  uint64_t Queries = 0;
  uint64_t Proofs = 0;
  uint64_t OctQueries = 0;
  uint64_t OctProofs = 0;
  uint64_t KarrQueries = 0;
  uint64_t KarrProofs = 0;
};

} // namespace analysis
} // namespace seqver

#endif // SEQVER_ANALYSIS_STATICCOMMUTATIVITY_H
