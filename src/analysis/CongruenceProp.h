//===- analysis/CongruenceProp.h - Thread-modular congruence propagation --===//
///
/// \file
/// Granger's congruence domain (`x ≡ r mod m`) run thread-modularly on the
/// Dataflow framework, with the same interference abstraction as the other
/// value domains: per thread, only *trackable* variables (globals written
/// by no other thread) enter the universe, so per-location facts are
/// invariants of every product state in which the thread occupies that
/// location.
///
/// The pass is the fourth registered InvariantSource (interval → octagon →
/// karr → congruence). It contributes what the affine equalities cannot:
/// divisibility facts on strided counters (`total := total + 2` in a loop
/// yields `total ≡ 0 mod 2` at the head regardless of the trip count),
/// which refute off-parity equalities — killing edges and settling
/// conditional-mover and commutativity obligations the exact-value domains
/// leave open. No widening is needed: every proper join strictly descends
/// a divisor chain of the modulus, so ascending chains are logarithmic.
///
//===----------------------------------------------------------------------===//

#ifndef SEQVER_ANALYSIS_CONGRUENCEPROP_H
#define SEQVER_ANALYSIS_CONGRUENCEPROP_H

#include "analysis/InvariantSource.h"

#include <map>
#include <optional>
#include <vector>

namespace seqver {
namespace analysis {

/// One congruence class: the values { R + k*M | k ∈ Z } when M > 0, the
/// single constant R when M == 0, and all of Z when M == 1 (top).
/// Normalized: M >= 0, and 0 <= R < M whenever M > 1.
struct Congruence {
  int64_t R = 0;
  int64_t M = 1;

  static Congruence top() { return {0, 1}; }
  static Congruence exact(int64_t V) { return {V, 0}; }
  /// The normalized class of (R mod M); M <= 0 is treated as constant R.
  static Congruence of(int64_t R, int64_t M);

  bool isTop() const { return M == 1; }
  bool isConst() const { return M == 0; }
  bool contains(int64_t V) const;

  bool operator==(const Congruence &O) const { return R == O.R && M == O.M; }
  bool operator!=(const Congruence &O) const { return !(*this == O); }
};

/// Least upper bound: the coarsest class containing both (modulus
/// gcd(M_a, M_b, |R_a - R_b|)).
Congruence congJoin(const Congruence &A, const Congruence &B);
/// Abstract sum and scaling (sound over-approximations; saturate to top on
/// int64 overflow or a modulus beyond the cap).
Congruence congAdd(const Congruence &A, const Congruence &B);
Congruence congScale(const Congruence &A, int64_t Factor);

/// Moduli above this are not tracked (saturate to top): keeps every
/// residue/modulus operation safely inside int64.
constexpr int64_t CongruenceModulusCap = int64_t(1) << 31;

/// Variable -> congruence; absent means top. The lattice element of the
/// congruence propagation pass.
using CongruenceFact = std::map<smt::Term, Congruence>;

/// Congruence class of a linear sum under a fact (booleans through the
/// [0,1] encoding; untracked variables are top).
Congruence congOfSum(const smt::LinSum &Sum, const CongruenceFact &F);

/// Tri-state truth of Formula under a congruence fact. The domain's
/// distinctive answer: an equality atom whose sum falls in a nonzero
/// residue class is refuted even though no variable is pinned.
Tri congEval(const smt::TermManager &TM, const CongruenceFact &F,
             smt::Term Formula);

class CongruenceAnalysis : public InvariantSource {
public:
  explicit CongruenceAnalysis(const prog::ConcurrentProgram &P);

  const char *name() const override { return "congruence"; }

  /// Fixpoint fact when ThreadId is at Loc; nullptr when unreachable.
  const CongruenceFact *factAt(int ThreadId, prog::Location Loc) const;

  bool reachable(int ThreadId, prog::Location Loc) const override;
  Tri evalAt(int ThreadId, prog::Location Loc,
             smt::Term Formula) const override;
  const std::vector<DeadEdge> &deadEdges() const override { return Dead; }

  /// Constant pins as equality atoms / boolean literals. Proper congruences
  /// (M > 1) are not emitted: the term language has only linear atoms, and
  /// a divisibility fact is not one — it acts through evalAt and deadEdges
  /// instead.
  std::vector<smt::Term> invariantAtoms(int ThreadId,
                                        prog::Location Loc) const override;

  /// Number of locations carrying a proper congruence (1 < M): facts
  /// beyond every exact-value domain; used by the --analyze report.
  size_t numCongruentLocations() const;

private:
  std::vector<std::vector<smt::Term>> Trackable;
  /// Facts[thread][loc]; nullopt = unreachable.
  std::vector<std::vector<std::optional<CongruenceFact>>> Facts;
  std::vector<DeadEdge> Dead;
};

} // namespace analysis
} // namespace seqver

#endif // SEQVER_ANALYSIS_CONGRUENCEPROP_H
