//===- analysis/IntervalProp.cpp - Constant/interval propagation ----------===//

#include "analysis/IntervalProp.h"

#include "analysis/Dataflow.h"
#include "analysis/Refine.h"
#include "analysis/TermSet.h"

#include <algorithm>

using namespace seqver;
using namespace seqver::analysis;
using seqver::prog::Action;
using seqver::prog::Location;
using seqver::prog::Prim;
using seqver::smt::Term;

namespace {

class IntervalDomain {
public:
  using Fact = IntervalFact;

  IntervalDomain(const prog::ConcurrentProgram &P,
                 const std::vector<Term> &Trackable)
      : P(P), TM(P.termManager()), Trackable(Trackable) {}

  Fact boundary() const {
    Fact F;
    for (Term Var : Trackable) {
      if (!P.isGlobalConstrained(Var))
        continue;
      const smt::Assignment &Init = P.initialValues();
      if (Var->sort() == smt::Sort::Int)
        F[Var] = Interval::exact(Init.intValue(Var));
      else
        F[Var] = Interval::exact(Init.boolValue(Var) ? 1 : 0);
    }
    return F;
  }

  bool join(Fact &Into, const Fact &From) const {
    bool Changed = false;
    for (auto It = Into.begin(); It != Into.end();) {
      auto OIt = From.find(It->first);
      if (OIt == From.end()) {
        It = Into.erase(It);
        Changed = true;
        continue;
      }
      Interval Hull = It->second;
      Hull.hullWith(OIt->second);
      if (Hull != It->second) {
        It->second = Hull;
        Changed = true;
      }
      ++It;
    }
    return Changed;
  }

  std::optional<Fact> transfer(const Action &A, const Fact &In) const {
    auto IsTrackable = [&](Term Var) {
      return termSetContains(Trackable, Var);
    };
    Fact F = In;
    for (const Prim &Pr : A.Prims) {
      switch (Pr.K) {
      case Prim::Kind::Assume:
        if (evalTri(TM, Pr.Guard, FactEnv{F}) == Tri::False)
          return std::nullopt;
        if (!refineConjunction(Pr.Guard, F, IsTrackable))
          return std::nullopt;
        break;
      case Prim::Kind::AssignInt:
        if (IsTrackable(Pr.Var))
          setInterval(F, Pr.Var, intervalOfSum(Pr.IntValue, FactEnv{F}));
        break;
      case Prim::Kind::AssignBool:
        if (IsTrackable(Pr.Var)) {
          switch (evalTri(TM, Pr.BoolValue, FactEnv{F})) {
          case Tri::True:
            F[Pr.Var] = Interval::exact(1);
            break;
          case Tri::False:
            F[Pr.Var] = Interval::exact(0);
            break;
          case Tri::Unknown:
            F.erase(Pr.Var);
            break;
          }
        }
        break;
      case Prim::Kind::Havoc:
        F.erase(Pr.Var);
        break;
      }
    }
    return F;
  }

  /// Finite cover: drop integer entries, keep booleans (their sublattice of
  /// [0,1] is finite, so chains through them terminate on their own).
  void widen(Fact &F) const {
    for (auto It = F.begin(); It != F.end();)
      if (It->first->sort() == smt::Sort::Int)
        It = F.erase(It);
      else
        ++It;
  }

private:
  const prog::ConcurrentProgram &P;
  const smt::TermManager &TM;
  const std::vector<Term> &Trackable;
};

} // namespace

std::vector<std::vector<Term>>
seqver::analysis::trackableVariables(const prog::ConcurrentProgram &P) {
  int N = P.numThreads();
  std::vector<std::vector<bool>> WrittenByThread(
      P.globals().size(), std::vector<bool>(static_cast<size_t>(N), false));
  auto GlobalIndex = [&](Term Var) -> int {
    const auto &G = P.globals();
    for (size_t I = 0; I < G.size(); ++I)
      if (G[I] == Var)
        return static_cast<int>(I);
    return -1;
  };
  for (const Action &A : P.actions())
    for (Term W : A.Writes) {
      int I = GlobalIndex(W);
      if (I >= 0)
        WrittenByThread[static_cast<size_t>(I)]
                       [static_cast<size_t>(A.ThreadId)] = true;
    }
  std::vector<std::vector<Term>> Trackable(static_cast<size_t>(N));
  for (int T = 0; T < N; ++T)
    for (size_t I = 0; I < P.globals().size(); ++I) {
      bool OtherWrites = false;
      for (int O = 0; O < N; ++O)
        if (O != T && WrittenByThread[I][static_cast<size_t>(O)])
          OtherWrites = true;
      if (!OtherWrites)
        termSetInsert(Trackable[static_cast<size_t>(T)], P.globals()[I]);
    }
  return Trackable;
}

IntervalAnalysis::IntervalAnalysis(const prog::ConcurrentProgram &P)
    : InvariantSource(P) {
  int N = P.numThreads();
  Trackable = trackableVariables(P);

  Facts.resize(static_cast<size_t>(N));
  for (int T = 0; T < N; ++T) {
    const prog::ThreadCfg &Cfg = P.thread(T);
    IntervalDomain D(P, Trackable[static_cast<size_t>(T)]);
    DataflowSolver<IntervalDomain> Solver(P, T, D, Direction::Forward);
    Solver.run();
    auto &PerLoc = Facts[static_cast<size_t>(T)];
    PerLoc.assign(Cfg.numLocations(), std::nullopt);
    for (Location L = 0; L < Cfg.numLocations(); ++L)
      if (const IntervalFact *F = Solver.at(L))
        PerLoc[L] = *F;

    for (Location L = 0; L < Cfg.numLocations(); ++L)
      for (const auto &[EdgeLetter, To] : Cfg.Edges[L]) {
        (void)To;
        bool IsDead =
            !PerLoc[L] || !D.transfer(P.action(EdgeLetter), *PerLoc[L]);
        if (IsDead)
          Dead.push_back({T, L, EdgeLetter});
      }
  }
}

const Interval *IntervalAnalysis::varAt(int ThreadId, Location Loc,
                                        Term Var) const {
  const IntervalFact *F = factAt(ThreadId, Loc);
  if (!F)
    return nullptr;
  auto It = F->find(Var);
  return It == F->end() ? nullptr : &It->second;
}

const IntervalFact *IntervalAnalysis::factAt(int ThreadId,
                                             Location Loc) const {
  const auto &PerLoc = Facts[static_cast<size_t>(ThreadId)];
  if (Loc >= PerLoc.size() || !PerLoc[Loc])
    return nullptr;
  return &*PerLoc[Loc];
}

bool IntervalAnalysis::reachable(int ThreadId, Location Loc) const {
  return factAt(ThreadId, Loc) != nullptr;
}

Tri IntervalAnalysis::evalAt(int ThreadId, Location Loc,
                             Term Formula) const {
  const IntervalFact *F = factAt(ThreadId, Loc);
  if (!F)
    return Tri::Unknown;
  return evalTri(Prog.termManager(), Formula, FactEnv{*F});
}

std::vector<Term> IntervalAnalysis::invariantAtoms(int ThreadId,
                                                   Location Loc) const {
  std::vector<Term> Out;
  const IntervalFact *F = factAt(ThreadId, Loc);
  if (!F)
    return Out;
  smt::TermManager &TM = Prog.termManager();
  for (const auto &[Var, I] : *F) {
    if (Var->sort() == smt::Sort::Bool) {
      if (I.isExact())
        Out.push_back(I.Lo != 0 ? Var : TM.mkNot(Var));
      continue;
    }
    if (I.isExact()) {
      Out.push_back(TM.mkEq(TM.sumOfVar(Var), TM.sumOfConst(I.Lo)));
      continue;
    }
    if (I.HasHi)
      Out.push_back(TM.mkLe(TM.sumOfVar(Var), TM.sumOfConst(I.Hi)));
    if (I.HasLo)
      Out.push_back(TM.mkGe(TM.sumOfVar(Var), TM.sumOfConst(I.Lo)));
  }
  return Out;
}

const std::vector<Term> &IntervalAnalysis::trackable(int ThreadId) const {
  return Trackable[static_cast<size_t>(ThreadId)];
}
