//===- analysis/InvariantSource.h - Abstract-domain registry interface ----===//
///
/// \file
/// The pluggable interface every thread-modular invariant analysis
/// implements (intervals, octagons, Karr affine equalities). The three
/// consumer seams are domain-agnostic and consume this interface only:
///
///  - the static conditional-commutativity tier strengthens a ~_phi b
///    obligations with invariantAt() of both letters' source locations,
///  - proof seeding feeds seedPredicates() into the proof automaton's
///    predicate pool (behind the Hoare gate, so seeds are sound by
///    construction),
///  - dead-edge pruning merges deadEdges() across every registered domain.
///
/// Soundness contract: every fact reported for (thread, location) must be
/// an invariant of *all* product states in which the thread occupies that
/// location, under arbitrary interleaving. The standard way to satisfy
/// this is to constrain only trackable variables (trackableVariables()).
///
//===----------------------------------------------------------------------===//

#ifndef SEQVER_ANALYSIS_INVARIANTSOURCE_H
#define SEQVER_ANALYSIS_INVARIANTSOURCE_H

#include "analysis/Interval.h"
#include "program/Program.h"

#include <map>
#include <utility>
#include <vector>

namespace seqver {
namespace analysis {

/// A prunable CFG edge, identified by thread, source location and letter.
struct DeadEdge {
  int ThreadId;
  prog::Location From;
  automata::Letter EdgeLetter;
};

class InvariantSource {
public:
  explicit InvariantSource(const prog::ConcurrentProgram &P) : Prog(P) {}
  virtual ~InvariantSource() = default;

  InvariantSource(const InvariantSource &) = delete;
  InvariantSource &operator=(const InvariantSource &) = delete;

  /// Registry key ("interval", "octagon", "karr"); also the prefix of the
  /// per-domain statistics counters.
  virtual const char *name() const = 0;

  /// True if the abstraction reaches Loc. A location any registered domain
  /// proves unreachable is unreachable (each domain over-approximates).
  virtual bool reachable(int ThreadId, prog::Location Loc) const = 0;

  /// Tri-state truth of Formula as an invariant of "ThreadId at Loc".
  virtual Tri evalAt(int ThreadId, prog::Location Loc,
                     smt::Term Formula) const = 0;

  /// Edges provably never taken in any interleaving.
  virtual const std::vector<DeadEdge> &deadEdges() const = 0;

  /// Atom terms of the invariant at one location (empty when top or
  /// unreachable). Each atom on its own must be a sound invariant.
  virtual std::vector<smt::Term> invariantAtoms(int ThreadId,
                                                prog::Location Loc) const = 0;

  /// The location invariant as one conjunction term: mkTrue when nothing
  /// is known, mkFalse when the location is unreachable. Cached.
  smt::Term invariantAt(int ThreadId, prog::Location Loc) const;

  /// Deduplicated invariant atoms over all locations of all threads, for
  /// seeding the proof automaton's predicate pool. Capped at MaxSeeds
  /// (closest-to-entry locations win; the cap bounds Hoare-query growth).
  std::vector<smt::Term> seedPredicates(size_t MaxSeeds = 64) const;

protected:
  const prog::ConcurrentProgram &Prog;

private:
  mutable std::map<std::pair<int, prog::Location>, smt::Term> InvariantCache;
};

} // namespace analysis
} // namespace seqver

#endif // SEQVER_ANALYSIS_INVARIANTSOURCE_H
