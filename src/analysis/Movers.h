//===- analysis/Movers.h - Lipton mover classification --------------------===//
///
/// \file
/// Classifies every program action as a left-, right-, both-, or non-mover
/// in Lipton's sense, from purely static evidence:
///
///  - **Footprint disjointness** (the MayAccess/footprint level): an action
///    whose reads and writes never conflict with any foreign action is a
///    both-mover outright.
///  - **MustLock vacuity**: two conflicting actions that must hold a common
///    lock are never co-located, so both swap orders are vacuous; an
///    acquire against a foreign action that must-holds the same lock is
///    blocked in every adjacency that would need a swap. The lock
///    discipline's ownership validation (LockSet.cpp) is what makes these
///    mutual-exclusion arguments sound.
///  - **Acquire/release asymmetry**: against a foreign release of the same
///    lock, an acquire stays a right-mover and the release a left-mover —
///    the classic Lipton classification.
///  - **Conditional movers** through the cumulative InvariantSource
///    registry: a conflict on edges every registered domain proves dead is
///    no conflict (the pair is vacuously independent), and a pair whose
///    commutativity obligations close under the per-location invariants
///    (StaticCommutativity::decide) is a both-mover pair, attributed to
///    the source that discharged it.
///
/// The per-letter class is the meet over all foreign conflicting pairs:
/// Both > {Right, Left} > None, with Right ∧ Left = None. Classes feed
/// transaction fusion (analysis/Fusion.h) and the `--analyze=movers`
/// report, which names the justifying source for each conditional mover.
///
//===----------------------------------------------------------------------===//

#ifndef SEQVER_ANALYSIS_MOVERS_H
#define SEQVER_ANALYSIS_MOVERS_H

#include "analysis/LockSet.h"
#include "analysis/MayAccess.h"
#include "program/Program.h"

#include <memory>
#include <string>
#include <vector>

namespace seqver {
namespace analysis {

class InvariantSource;

/// Lipton mover class of one action. Lattice (for the per-letter meet):
/// Both above Right and Left, which are incomparable, above None.
enum class MoverClass : uint8_t { None, Right, Left, Both };

const char *moverClassName(MoverClass C);

/// Meet in the mover lattice (Right ∧ Left = None).
MoverClass moverMeet(MoverClass A, MoverClass B);

/// Classification of one letter plus its justification trail.
struct MoverInfo {
  MoverClass Class = MoverClass::Both;
  /// Name of the invariant source a conditional justification relied on
  /// ("interval", "octagon", "karr", "congruence"); empty when the class
  /// needed no invariant reasoning. When several pairs needed different
  /// sources, the most expensive one is kept.
  std::string Source;
  /// Human-readable note on the binding constraint: which foreign action
  /// demoted the class, or which rule kept it a both-mover.
  std::string Reason;
  /// True when at least one conflicting pair was discharged through an
  /// invariant source (the ISSUE's "conditional mover").
  bool Conditional = false;
};

/// How one conflicting pair was settled (for counters and the report).
struct MoverPairStats {
  uint64_t PairsChecked = 0;    ///< foreign pairs with a footprint conflict
  uint64_t PairsDisjoint = 0;   ///< foreign pairs with no conflict at all
  uint64_t PairsDeadEdge = 0;   ///< discharged: all edges of one side dead
  uint64_t PairsStatic = 0;     ///< discharged by static commutativity
  uint64_t PairsLockVacuous = 0; ///< discharged by MustLock vacuity
  uint64_t PairsAcqRel = 0;     ///< acquire/release asymmetry applied
  uint64_t PairsDemoted = 0;    ///< no rule: both sides met with None
};

/// Whole-program mover classification. References the program and the
/// analyses, which must outlive it.
class MoverAnalysis {
public:
  /// Sources are consulted in the given order (cheapest first) for
  /// dead-edge vacuity and conditional commutativity; empty disables the
  /// conditional tier (lock and footprint rules still apply).
  MoverAnalysis(const prog::ConcurrentProgram &P,
                const LockSetAnalysis &Locks,
                const MayAccessAnalysis &Accesses,
                const std::vector<const InvariantSource *> &Sources);
  ~MoverAnalysis();

  MoverClass classOf(automata::Letter L) const {
    return Infos[L].Class;
  }
  const MoverInfo &info(automata::Letter L) const { return Infos[L]; }

  const MoverPairStats &pairStats() const { return Pairs; }

  size_t numBoth() const { return count(MoverClass::Both); }
  size_t numRight() const { return count(MoverClass::Right); }
  size_t numLeft() const { return count(MoverClass::Left); }
  size_t numNone() const { return count(MoverClass::None); }
  /// Letters whose class relied on an invariant source.
  size_t numConditional() const;

  /// Per-statement classification table (--analyze=movers output): one
  /// line per action with its class, the justifying source for
  /// conditional movers, and the binding reason.
  std::string report() const;

private:
  size_t count(MoverClass C) const;

  const prog::ConcurrentProgram &P;
  std::vector<MoverInfo> Infos;
  MoverPairStats Pairs;
};

} // namespace analysis
} // namespace seqver

#endif // SEQVER_ANALYSIS_MOVERS_H
