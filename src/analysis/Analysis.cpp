//===- analysis/Analysis.cpp - Whole-program static analysis driver -------===//

#include "analysis/Analysis.h"

#include <algorithm>
#include <map>
#include <sstream>

using namespace seqver;
using namespace seqver::analysis;
using seqver::automata::Letter;
using seqver::prog::Location;
using seqver::smt::Term;

ProgramAnalysis::ProgramAnalysis(const prog::ConcurrentProgram &P) : P(P) {
  Locks = std::make_unique<LockSetAnalysis>(P);
  Accesses = std::make_unique<MayAccessAnalysis>(P);
  Intervals = std::make_unique<IntervalAnalysis>(P);
  Octagons = std::make_unique<OctagonAnalysis>(P);
  Racy = std::make_unique<RaceDetector>(P, *Locks, Intervals.get());
}

std::string ProgramAnalysis::report() const {
  std::ostringstream Out;
  const smt::TermManager &TM = P.termManager();

  Out << "== static analysis report ==\n";
  Out << "threads: " << P.numThreads() << "  actions: " << P.numLetters()
      << "  locations: " << P.size() << "\n\n";

  Out << "locks (" << Locks->locks().Locks.size() << "):";
  for (Term L : Locks->locks().Locks)
    Out << " " << L->name();
  Out << "\n";

  const auto &Dead = Intervals->deadEdges();
  Out << "dead edges (" << Dead.size() << "):";
  for (const DeadEdge &E : Dead)
    Out << " " << P.action(E.EdgeLetter).Name;
  Out << "\n";

  // Relational pass: how much the octagons see beyond the intervals.
  const auto &ODead = Octagons->deadEdges();
  auto InIntervalDead = [&](const DeadEdge &E) {
    return std::any_of(Dead.begin(), Dead.end(), [&](const DeadEdge &D) {
      return D.ThreadId == E.ThreadId && D.From == E.From &&
             D.EdgeLetter == E.EdgeLetter;
    });
  };
  Out << "octagon dead edges (" << ODead.size() << "):";
  for (const DeadEdge &E : ODead)
    if (!InIntervalDead(E))
      Out << " +" << P.action(E.EdgeLetter).Name;
  Out << "\n";
  Out << "octagon relational locations: "
      << Octagons->numRelationalLocations() << "\n\n";

  const auto &Races = Racy->races();
  Out << "races (" << Races.size() << "):\n";
  for (const Race &R : Races) {
    Out << "  " << (R.WriteWrite ? "write/write" : "write/read") << " on";
    for (Term V : R.Vars)
      Out << " " << V->name();
    Out << ": `" << P.action(R.First).Name << "` (thread "
        << P.action(R.First).ThreadId << ") vs `" << P.action(R.Second).Name
        << "` (thread " << P.action(R.Second).ThreadId << ")\n";
  }
  if (Races.empty())
    Out << "  none (lockset discipline covers all conflicting pairs)\n";

  const auto &Prot = Racy->protectedPairs();
  Out << "\nlock-protected independent pairs (" << Prot.size() << "):\n";
  for (const ProtectedPair &Pair : Prot)
    Out << "  `" << P.action(Pair.First).Name << "` vs `"
        << P.action(Pair.Second).Name << "` under " << Pair.Lock->name()
        << "\n";
  if (Prot.empty())
    Out << "  none\n";
  (void)TM;
  return Out.str();
}

uint32_t seqver::analysis::pruneDeadEdges(prog::ConcurrentProgram &P,
                                          const IntervalAnalysis &Intervals,
                                          const OctagonAnalysis *Octagons) {
  // Group dead edges by (thread, source) so "would this empty the location"
  // can be answered before touching the CFG. Interval and octagon lists are
  // merged with deduplication (both passes find most shallow dead edges).
  std::map<std::pair<int, Location>, std::vector<Letter>> BySource;
  auto Record = [&](const DeadEdge &E) {
    auto &Letters = BySource[{E.ThreadId, E.From}];
    if (std::find(Letters.begin(), Letters.end(), E.EdgeLetter) ==
        Letters.end())
      Letters.push_back(E.EdgeLetter);
  };
  for (const DeadEdge &E : Intervals.deadEdges())
    Record(E);
  if (Octagons)
    for (const DeadEdge &E : Octagons->deadEdges())
      Record(E);

  uint32_t Removed = 0;
  for (const auto &[Src, Letters] : BySource) {
    const auto &[ThreadId, From] = Src;
    bool Reachable = Intervals.reachable(ThreadId, From) &&
                     (!Octagons || Octagons->reachable(ThreadId, From));
    size_t OutDegree = P.thread(ThreadId).Edges[From].size();
    // Keep a reachable location's last edge: removing all of them would
    // reclassify a stuck (deadlocked) location as a legitimate exit.
    size_t Removable =
        Reachable && Letters.size() >= OutDegree ? Letters.size() - 1
                                                 : Letters.size();
    for (size_t I = 0; I < Removable; ++I)
      if (P.removeEdge(ThreadId, From, Letters[I]))
        ++Removed;
  }
  return Removed;
}

uint32_t seqver::analysis::pruneDeadEdges(prog::ConcurrentProgram &P,
                                          const IntervalAnalysis &Intervals) {
  return pruneDeadEdges(P, Intervals, nullptr);
}

uint32_t seqver::analysis::pruneDeadEdges(prog::ConcurrentProgram &P,
                                          bool WithOctagons) {
  IntervalAnalysis Intervals(P);
  if (!WithOctagons)
    return pruneDeadEdges(P, Intervals, nullptr);
  OctagonAnalysis Octagons(P);
  return pruneDeadEdges(P, Intervals, &Octagons);
}
