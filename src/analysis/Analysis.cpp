//===- analysis/Analysis.cpp - Whole-program static analysis driver -------===//

#include "analysis/Analysis.h"

#include <algorithm>
#include <map>
#include <optional>
#include <sstream>

using namespace seqver;
using namespace seqver::analysis;
using seqver::automata::Letter;
using seqver::prog::Location;
using seqver::smt::Term;

ProgramAnalysis::ProgramAnalysis(const prog::ConcurrentProgram &P) : P(P) {
  Locks = std::make_unique<LockSetAnalysis>(P);
  Accesses = std::make_unique<MayAccessAnalysis>(P);
  Intervals = std::make_unique<IntervalAnalysis>(P);
  Octagons = std::make_unique<OctagonAnalysis>(P);
  Karr = std::make_unique<KarrAnalysis>(P);
  Congruences = std::make_unique<CongruenceAnalysis>(P);
  Racy = std::make_unique<RaceDetector>(P, *Locks, Intervals.get());
}

std::vector<const InvariantSource *>
ProgramAnalysis::invariantSources() const {
  return {Intervals.get(), Octagons.get(), Karr.get(), Congruences.get()};
}

std::string ProgramAnalysis::report() const {
  std::ostringstream Out;
  const smt::TermManager &TM = P.termManager();

  Out << "== static analysis report ==\n";
  Out << "threads: " << P.numThreads() << "  actions: " << P.numLetters()
      << "  locations: " << P.size() << "\n\n";

  Out << "locks (" << Locks->locks().Locks.size() << "):";
  for (Term L : Locks->locks().Locks)
    Out << " " << L->name();
  Out << "\n";

  const auto &Dead = Intervals->deadEdges();
  Out << "dead edges (" << Dead.size() << "):";
  for (const DeadEdge &E : Dead)
    Out << " " << P.action(E.EdgeLetter).Name;
  Out << "\n";

  auto Contains = [](const std::vector<DeadEdge> &List, const DeadEdge &E) {
    return std::any_of(List.begin(), List.end(), [&](const DeadEdge &D) {
      return D.ThreadId == E.ThreadId && D.From == E.From &&
             D.EdgeLetter == E.EdgeLetter;
    });
  };

  // Relational pass: how much the octagons see beyond the intervals.
  const auto &ODead = Octagons->deadEdges();
  Out << "octagon dead edges (" << ODead.size() << "):";
  for (const DeadEdge &E : ODead)
    if (!Contains(Dead, E))
      Out << " +" << P.action(E.EdgeLetter).Name;
  Out << "\n";
  Out << "octagon relational locations: "
      << Octagons->numRelationalLocations() << "\n";

  // Affine pass: what Karr sees beyond both cheaper tiers.
  const auto &KDead = Karr->deadEdges();
  Out << "karr dead edges (" << KDead.size() << "):";
  for (const DeadEdge &E : KDead)
    if (!Contains(Dead, E) && !Contains(ODead, E))
      Out << " +" << P.action(E.EdgeLetter).Name;
  Out << "\n";
  Out << "karr affine locations: " << Karr->numAffineLocations() << "\n";

  // Congruence pass: divisibility facts beyond every exact-value domain.
  const auto &CDead = Congruences->deadEdges();
  Out << "congruence dead edges (" << CDead.size() << "):";
  for (const DeadEdge &E : CDead)
    if (!Contains(Dead, E) && !Contains(ODead, E) && !Contains(KDead, E))
      Out << " +" << P.action(E.EdgeLetter).Name;
  Out << "\n";
  Out << "congruent locations: " << Congruences->numCongruentLocations()
      << "\n\n";

  const auto &Races = Racy->races();
  Out << "races (" << Races.size() << "):\n";
  for (const Race &R : Races) {
    Out << "  " << (R.WriteWrite ? "write/write" : "write/read") << " on";
    for (Term V : R.Vars)
      Out << " " << V->name();
    Out << ": `" << P.action(R.First).Name << "` (thread "
        << P.action(R.First).ThreadId << ") vs `" << P.action(R.Second).Name
        << "` (thread " << P.action(R.Second).ThreadId << ")\n";
  }
  if (Races.empty())
    Out << "  none (lockset discipline covers all conflicting pairs)\n";

  const auto &Prot = Racy->protectedPairs();
  Out << "\nlock-protected independent pairs (" << Prot.size() << "):\n";
  for (const ProtectedPair &Pair : Prot)
    Out << "  `" << P.action(Pair.First).Name << "` vs `"
        << P.action(Pair.Second).Name << "` under " << Pair.Lock->name()
        << "\n";
  if (Prot.empty())
    Out << "  none\n";
  (void)TM;
  return Out.str();
}

uint32_t seqver::analysis::pruneDeadEdges(
    prog::ConcurrentProgram &P,
    const std::vector<const InvariantSource *> &Sources, PruneStats *Stats) {
  // Group dead edges by (thread, source) so "would this empty the location"
  // can be answered before touching the CFG. Lists are merged with
  // deduplication; each edge remembers the first source that found it, so
  // the per-source counts measure what the cheaper tiers missed.
  struct Rec {
    Letter EdgeLetter;
    size_t SourceIdx;
  };
  std::map<std::pair<int, Location>, std::vector<Rec>> BySource;
  for (size_t I = 0; I < Sources.size(); ++I)
    for (const DeadEdge &E : Sources[I]->deadEdges()) {
      auto &Recs = BySource[{E.ThreadId, E.From}];
      if (std::none_of(Recs.begin(), Recs.end(), [&](const Rec &R) {
            return R.EdgeLetter == E.EdgeLetter;
          }))
        Recs.push_back({E.EdgeLetter, I});
    }

  uint32_t Removed = 0;
  for (const auto &[Src, Recs] : BySource) {
    const auto &[ThreadId, From] = Src;
    bool Reachable =
        std::all_of(Sources.begin(), Sources.end(),
                    [&, T = ThreadId, L = From](const InvariantSource *S) {
                      return S->reachable(T, L);
                    });
    size_t OutDegree = P.thread(ThreadId).Edges[From].size();
    // Keep a reachable location's last edge: removing all of them would
    // reclassify a stuck (deadlocked) location as a legitimate exit.
    size_t Removable = Reachable && Recs.size() >= OutDegree
                           ? Recs.size() - 1
                           : Recs.size();
    for (size_t I = 0; I < Removable; ++I)
      if (P.removeEdge(ThreadId, From, Recs[I].EdgeLetter)) {
        ++Removed;
        if (Stats)
          ++Stats->BySource[Sources[Recs[I].SourceIdx]->name()];
      }
  }
  if (Stats)
    Stats->Removed += Removed;
  return Removed;
}

uint32_t seqver::analysis::pruneDeadEdges(prog::ConcurrentProgram &P,
                                          PrunePreset Preset,
                                          PruneStats *Stats) {
  IntervalAnalysis Intervals(P);
  std::optional<OctagonAnalysis> Octagons;
  std::optional<KarrAnalysis> Karr;
  std::optional<CongruenceAnalysis> Congruences;
  std::vector<const InvariantSource *> Sources{&Intervals};
  if (Preset != PrunePreset::IntervalOnly) {
    Octagons.emplace(P);
    Sources.push_back(&*Octagons);
  }
  if (Preset == PrunePreset::Full) {
    Karr.emplace(P);
    Sources.push_back(&*Karr);
    Congruences.emplace(P);
    Sources.push_back(&*Congruences);
  }
  return pruneDeadEdges(P, Sources, Stats);
}
