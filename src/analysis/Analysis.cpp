//===- analysis/Analysis.cpp - Whole-program static analysis driver -------===//

#include "analysis/Analysis.h"

#include <map>
#include <sstream>

using namespace seqver;
using namespace seqver::analysis;
using seqver::automata::Letter;
using seqver::prog::Location;
using seqver::smt::Term;

ProgramAnalysis::ProgramAnalysis(const prog::ConcurrentProgram &P) : P(P) {
  Locks = std::make_unique<LockSetAnalysis>(P);
  Accesses = std::make_unique<MayAccessAnalysis>(P);
  Intervals = std::make_unique<IntervalAnalysis>(P);
  Racy = std::make_unique<RaceDetector>(P, *Locks, Intervals.get());
}

std::string ProgramAnalysis::report() const {
  std::ostringstream Out;
  const smt::TermManager &TM = P.termManager();

  Out << "== static analysis report ==\n";
  Out << "threads: " << P.numThreads() << "  actions: " << P.numLetters()
      << "  locations: " << P.size() << "\n\n";

  Out << "locks (" << Locks->locks().Locks.size() << "):";
  for (Term L : Locks->locks().Locks)
    Out << " " << L->name();
  Out << "\n";

  const auto &Dead = Intervals->deadEdges();
  Out << "dead edges (" << Dead.size() << "):";
  for (const DeadEdge &E : Dead)
    Out << " " << P.action(E.EdgeLetter).Name;
  Out << "\n\n";

  const auto &Races = Racy->races();
  Out << "races (" << Races.size() << "):\n";
  for (const Race &R : Races) {
    Out << "  " << (R.WriteWrite ? "write/write" : "write/read") << " on";
    for (Term V : R.Vars)
      Out << " " << V->name();
    Out << ": `" << P.action(R.First).Name << "` (thread "
        << P.action(R.First).ThreadId << ") vs `" << P.action(R.Second).Name
        << "` (thread " << P.action(R.Second).ThreadId << ")\n";
  }
  if (Races.empty())
    Out << "  none (lockset discipline covers all conflicting pairs)\n";

  const auto &Prot = Racy->protectedPairs();
  Out << "\nlock-protected independent pairs (" << Prot.size() << "):\n";
  for (const ProtectedPair &Pair : Prot)
    Out << "  `" << P.action(Pair.First).Name << "` vs `"
        << P.action(Pair.Second).Name << "` under " << Pair.Lock->name()
        << "\n";
  if (Prot.empty())
    Out << "  none\n";
  (void)TM;
  return Out.str();
}

uint32_t seqver::analysis::pruneDeadEdges(prog::ConcurrentProgram &P,
                                          const IntervalAnalysis &Intervals) {
  // Group dead edges by (thread, source) so "would this empty the location"
  // can be answered before touching the CFG.
  std::map<std::pair<int, Location>, std::vector<Letter>> BySource;
  for (const DeadEdge &E : Intervals.deadEdges())
    BySource[{E.ThreadId, E.From}].push_back(E.EdgeLetter);

  uint32_t Removed = 0;
  for (const auto &[Src, Letters] : BySource) {
    const auto &[ThreadId, From] = Src;
    bool Reachable = Intervals.reachable(ThreadId, From);
    size_t OutDegree = P.thread(ThreadId).Edges[From].size();
    // Keep a reachable location's last edge: removing all of them would
    // reclassify a stuck (deadlocked) location as a legitimate exit.
    size_t Removable =
        Reachable && Letters.size() >= OutDegree ? Letters.size() - 1
                                                 : Letters.size();
    for (size_t I = 0; I < Removable; ++I)
      if (P.removeEdge(ThreadId, From, Letters[I]))
        ++Removed;
  }
  return Removed;
}

uint32_t seqver::analysis::pruneDeadEdges(prog::ConcurrentProgram &P) {
  IntervalAnalysis Intervals(P);
  return pruneDeadEdges(P, Intervals);
}
