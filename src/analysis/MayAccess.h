//===- analysis/MayAccess.h - May-read/may-write sets per location --------===//
///
/// \file
/// For every thread location, the sets of global variables the thread may
/// still read or write from that location onward: a backward may-analysis
/// (union at joins) over the action footprints, run on the Dataflow
/// framework. The race report uses it to summarize a thread's remaining
/// shared-memory behaviour, and tests use it to exercise the backward
/// direction of the solver.
///
//===----------------------------------------------------------------------===//

#ifndef SEQVER_ANALYSIS_MAYACCESS_H
#define SEQVER_ANALYSIS_MAYACCESS_H

#include "analysis/Dataflow.h"
#include "program/Program.h"

#include <vector>

namespace seqver {
namespace analysis {

/// Sorted-by-id variable sets; the lattice element of the MayAccess pass.
struct AccessSets {
  std::vector<smt::Term> Reads;
  std::vector<smt::Term> Writes;

  bool mayRead(smt::Term V) const;
  bool mayWrite(smt::Term V) const;
};

/// May-access facts for every location of every thread.
class MayAccessAnalysis {
public:
  explicit MayAccessAnalysis(const prog::ConcurrentProgram &P);

  /// Variables possibly accessed by ThreadId at-or-after Loc. Locations
  /// with no fact (unreachable) yield empty sets.
  const AccessSets &at(int ThreadId, prog::Location Loc) const;

private:
  std::vector<std::vector<AccessSets>> Facts;
  AccessSets Empty;
};

} // namespace analysis
} // namespace seqver

#endif // SEQVER_ANALYSIS_MAYACCESS_H
