//===- analysis/MayAccess.cpp - May-read/may-write sets per location ------===//

#include "analysis/MayAccess.h"

#include "analysis/TermSet.h"

using namespace seqver;
using namespace seqver::analysis;
using seqver::prog::Action;
using seqver::prog::Location;
using seqver::smt::Term;

bool AccessSets::mayRead(Term V) const { return termSetContains(Reads, V); }
bool AccessSets::mayWrite(Term V) const { return termSetContains(Writes, V); }

namespace {

/// Backward may-analysis: the fact at L is the union of the footprints of
/// all actions on paths from L to a terminal location.
class MayAccessDomain {
public:
  using Fact = AccessSets;

  Fact boundary() const { return {}; }

  bool join(Fact &Into, const Fact &From) const {
    bool Changed = termSetUnion(Into.Reads, From.Reads);
    Changed |= termSetUnion(Into.Writes, From.Writes);
    return Changed;
  }

  std::optional<Fact> transfer(const Action &A, const Fact &In) const {
    Fact Out = In;
    termSetUnion(Out.Reads, A.Reads);
    termSetUnion(Out.Writes, A.Writes);
    return Out;
  }

  void widen(Fact &) const {} // finite lattice: height <= #variables
};

} // namespace

MayAccessAnalysis::MayAccessAnalysis(const prog::ConcurrentProgram &P) {
  Facts.resize(static_cast<size_t>(P.numThreads()));
  for (int T = 0; T < P.numThreads(); ++T) {
    const prog::ThreadCfg &Cfg = P.thread(T);
    DataflowSolver<MayAccessDomain> Solver(P, T, MayAccessDomain(),
                                           Direction::Backward);
    Solver.run();
    auto &PerLoc = Facts[static_cast<size_t>(T)];
    PerLoc.assign(Cfg.numLocations(), {});
    for (Location L = 0; L < Cfg.numLocations(); ++L)
      if (const AccessSets *F = Solver.at(L))
        PerLoc[L] = *F;
  }
}

const AccessSets &MayAccessAnalysis::at(int ThreadId,
                                        prog::Location Loc) const {
  const auto &PerLoc = Facts[static_cast<size_t>(ThreadId)];
  return Loc < PerLoc.size() ? PerLoc[Loc] : Empty;
}
