//===- analysis/Interval.h - Integer intervals and tri-state evaluation ---===//
///
/// \file
/// The abstract value domain shared by the constant/interval propagation
/// pass and the SMT-free commutativity decider: possibly-unbounded integer
/// intervals, saturating range arithmetic over linear sums, and a tri-state
/// (true / false / unknown) evaluator for formulas under an interval
/// environment. Boolean variables are encoded as sub-intervals of [0, 1].
///
/// Everything here is deliberately value-level and allocation-light; the
/// callers run it per CFG edge and per commutativity obligation.
///
//===----------------------------------------------------------------------===//

#ifndef SEQVER_ANALYSIS_INTERVAL_H
#define SEQVER_ANALYSIS_INTERVAL_H

#include "smt/Term.h"

#include <cstdint>
#include <map>
#include <optional>

namespace seqver {
namespace analysis {

/// A possibly half-open integer interval. Missing bounds mean -inf / +inf.
/// An Interval value is always non-empty; meets that would produce an empty
/// interval report it via their return value instead.
struct Interval {
  bool HasLo = false;
  bool HasHi = false;
  int64_t Lo = 0;
  int64_t Hi = 0;

  static Interval top() { return {}; }
  static Interval exact(int64_t V) { return {true, true, V, V}; }
  static Interval atLeast(int64_t V) { return {true, false, V, 0}; }
  static Interval atMost(int64_t V) { return {false, true, 0, V}; }

  bool isTop() const { return !HasLo && !HasHi; }
  bool isExact() const { return HasLo && HasHi && Lo == Hi; }
  bool contains(int64_t V) const {
    return (!HasLo || Lo <= V) && (!HasHi || V <= Hi);
  }

  /// Least upper bound (interval hull).
  void hullWith(const Interval &O) {
    if (HasLo && (!O.HasLo || O.Lo < Lo)) {
      HasLo = O.HasLo;
      Lo = O.Lo;
    }
    if (HasHi && (!O.HasHi || O.Hi > Hi)) {
      HasHi = O.HasHi;
      Hi = O.Hi;
    }
  }

  /// Greatest lower bound; returns false iff the meet is empty.
  bool meetWith(const Interval &O) {
    if (O.HasLo && (!HasLo || O.Lo > Lo)) {
      HasLo = true;
      Lo = O.Lo;
    }
    if (O.HasHi && (!HasHi || O.Hi < Hi)) {
      HasHi = true;
      Hi = O.Hi;
    }
    return !(HasLo && HasHi && Lo > Hi);
  }

  bool operator==(const Interval &O) const {
    return HasLo == O.HasLo && HasHi == O.HasHi &&
           (!HasLo || Lo == O.Lo) && (!HasHi || Hi == O.Hi);
  }
  bool operator!=(const Interval &O) const { return !(*this == O); }
};

/// An interval environment: variable -> interval; absent means top.
/// Also the lattice element of the constant/interval propagation pass.
using IntervalFact = std::map<smt::Term, Interval>;

/// Lookup functor adapting an IntervalFact for the evaluators below.
struct FactEnv {
  const IntervalFact &F;
  const Interval *operator()(smt::Term Var) const {
    auto It = F.find(Var);
    return It == F.end() ? nullptr : &It->second;
  }
};

enum class Tri : uint8_t { False, True, Unknown };

inline Tri triNot(Tri T) {
  switch (T) {
  case Tri::False:
    return Tri::True;
  case Tri::True:
    return Tri::False;
  case Tri::Unknown:
    return Tri::Unknown;
  }
  return Tri::Unknown;
}

/// Saturating range evaluation of a linear sum under an environment.
/// Lookup is `const Interval *(smt::Term Var)`; nullptr means top.
/// Accumulates in 128-bit and drops a bound rather than wrapping.
template <typename LookupFn>
Interval intervalOfSum(const smt::LinSum &Sum, const LookupFn &Lookup) {
  bool HasLo = true, HasHi = true;
  __int128 Lo = Sum.Constant, Hi = Sum.Constant;
  for (const auto &[Var, Coeff] : Sum.Terms) {
    const Interval *I = Lookup(Var);
    // Contribution range of Coeff * Var.
    bool CLo, CHi;
    __int128 L = 0, H = 0;
    if (!I) {
      CLo = CHi = false;
    } else if (Coeff > 0) {
      CLo = I->HasLo;
      CHi = I->HasHi;
      L = static_cast<__int128>(Coeff) * I->Lo;
      H = static_cast<__int128>(Coeff) * I->Hi;
    } else {
      CLo = I->HasHi;
      CHi = I->HasLo;
      L = static_cast<__int128>(Coeff) * I->Hi;
      H = static_cast<__int128>(Coeff) * I->Lo;
    }
    HasLo = HasLo && CLo;
    HasHi = HasHi && CHi;
    if (HasLo)
      Lo += L;
    if (HasHi)
      Hi += H;
    if (!HasLo && !HasHi)
      return Interval::top();
  }
  // Saturate back into int64 bounds; a bound outside the representable
  // range is dropped (sound: the interval only grows).
  constexpr __int128 Min = INT64_MIN, Max = INT64_MAX;
  Interval Out;
  if (HasLo && Lo >= Min && Lo <= Max) {
    Out.HasLo = true;
    Out.Lo = static_cast<int64_t>(Lo);
  }
  if (HasHi && Hi >= Min && Hi <= Max) {
    Out.HasHi = true;
    Out.Hi = static_cast<int64_t>(Hi);
  }
  return Out;
}

/// Tri-state truth of Formula with pluggable atom evaluation. Boolean
/// variables evaluate through Lookup with the [0,1] encoding; the range of
/// each linear atom's sum comes from RangeOf, so relational domains (the
/// octagon) can answer atoms their unary projection cannot. Conservative:
/// Unknown whenever the ranges do not pin the answer down.
template <typename LookupFn, typename SumRangeFn>
Tri evalTriOver(const smt::TermManager &TM, smt::Term Formula,
                const LookupFn &Lookup, const SumRangeFn &RangeOf) {
  using smt::TermKind;
  switch (Formula->kind()) {
  case TermKind::BoolConst:
    return Formula->boolValue() ? Tri::True : Tri::False;
  case TermKind::IntVar:
    return Tri::Unknown; // ill-sorted as a formula; never built by mk*
  case TermKind::BoolVar: {
    const Interval *I = Lookup(Formula);
    if (I && I->isExact())
      return I->Lo != 0 ? Tri::True : Tri::False;
    return Tri::Unknown;
  }
  case TermKind::AtomLe: {
    Interval R = RangeOf(Formula->sum());
    if (R.HasHi && R.Hi <= 0)
      return Tri::True;
    if (R.HasLo && R.Lo > 0)
      return Tri::False;
    return Tri::Unknown;
  }
  case TermKind::AtomEq: {
    Interval R = RangeOf(Formula->sum());
    if (R.isExact() && R.Lo == 0)
      return Tri::True;
    if (!R.contains(0))
      return Tri::False;
    return Tri::Unknown;
  }
  case TermKind::Not:
    return triNot(evalTriOver(TM, Formula->child(0), Lookup, RangeOf));
  case TermKind::And: {
    Tri Acc = Tri::True;
    for (smt::Term C : Formula->children()) {
      Tri T = evalTriOver(TM, C, Lookup, RangeOf);
      if (T == Tri::False)
        return Tri::False;
      if (T == Tri::Unknown)
        Acc = Tri::Unknown;
    }
    return Acc;
  }
  case TermKind::Or: {
    Tri Acc = Tri::False;
    for (smt::Term C : Formula->children()) {
      Tri T = evalTriOver(TM, C, Lookup, RangeOf);
      if (T == Tri::True)
        return Tri::True;
      if (T == Tri::Unknown)
        Acc = Tri::Unknown;
    }
    return Acc;
  }
  case TermKind::Iff: {
    Tri A = evalTriOver(TM, Formula->child(0), Lookup, RangeOf);
    Tri B = evalTriOver(TM, Formula->child(1), Lookup, RangeOf);
    if (A == Tri::Unknown || B == Tri::Unknown)
      return Tri::Unknown;
    return A == B ? Tri::True : Tri::False;
  }
  }
  return Tri::Unknown;
}

/// Tri-state truth under a plain interval environment (atoms ranged by
/// intervalOfSum over Lookup).
template <typename LookupFn>
Tri evalTri(const smt::TermManager &TM, smt::Term Formula,
            const LookupFn &Lookup) {
  return evalTriOver(TM, Formula, Lookup, [&](const smt::LinSum &Sum) {
    return intervalOfSum(Sum, Lookup);
  });
}

} // namespace analysis
} // namespace seqver

#endif // SEQVER_ANALYSIS_INTERVAL_H
