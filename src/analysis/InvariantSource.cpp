//===- analysis/InvariantSource.cpp - Abstract-domain registry interface --===//

#include "analysis/InvariantSource.h"

#include <set>

using namespace seqver;
using namespace seqver::analysis;
using seqver::prog::Location;
using seqver::smt::Term;

Term InvariantSource::invariantAt(int ThreadId, Location Loc) const {
  auto CacheKey = std::make_pair(ThreadId, Loc);
  auto It = InvariantCache.find(CacheKey);
  if (It != InvariantCache.end())
    return It->second;
  smt::TermManager &TM = Prog.termManager();
  Term Result;
  if (!reachable(ThreadId, Loc)) {
    Result = TM.mkFalse(); // unreachable: the letter never executes
  } else {
    std::vector<Term> Atoms = invariantAtoms(ThreadId, Loc);
    Result = Atoms.empty() ? TM.mkTrue() : TM.mkAnd(std::move(Atoms));
  }
  InvariantCache.emplace(CacheKey, Result);
  return Result;
}

std::vector<Term> InvariantSource::seedPredicates(size_t MaxSeeds) const {
  std::vector<Term> Out;
  std::set<Term> Seen;
  for (int T = 0; T < Prog.numThreads(); ++T) {
    const prog::ThreadCfg &Cfg = Prog.thread(T);
    for (Location L = 0; L < Cfg.numLocations(); ++L) {
      for (Term Atom : invariantAtoms(T, L)) {
        if (Out.size() >= MaxSeeds)
          return Out;
        if (Seen.insert(Atom).second)
          Out.push_back(Atom);
      }
    }
  }
  return Out;
}
