//===- analysis/Fusion.cpp - Lipton transaction fusion --------------------===//

#include "analysis/Fusion.h"

#include "analysis/Analysis.h"

#include <algorithm>
#include <deque>
#include <set>

using namespace seqver;
using namespace seqver::analysis;
using seqver::automata::Letter;
using seqver::prog::Location;

namespace {

/// Reachable locations of one thread (graph reachability from the entry).
uint32_t reachableLocations(const prog::ThreadCfg &Cfg) {
  std::vector<bool> Seen(Cfg.numLocations(), false);
  std::deque<Location> Work{Cfg.InitialLoc};
  Seen[Cfg.InitialLoc] = true;
  uint32_t Count = 0;
  while (!Work.empty()) {
    Location L = Work.front();
    Work.pop_front();
    ++Count;
    for (const auto &[Letter, To] : Cfg.Edges[L]) {
      (void)Letter;
      if (!Seen[To]) {
        Seen[To] = true;
        Work.push_back(To);
      }
    }
  }
  return Count;
}

uint32_t reachableLocations(const prog::ConcurrentProgram &P) {
  uint32_t Total = 0;
  for (int T = 0; T < P.numThreads(); ++T)
    Total += reachableLocations(P.thread(T));
  return Total;
}

/// Letters that label at least one CFG edge.
uint32_t enabledAlphabet(const prog::ConcurrentProgram &P) {
  std::vector<bool> Labels(P.numLetters(), false);
  for (int T = 0; T < P.numThreads(); ++T)
    for (const auto &List : P.thread(T).Edges)
      for (const auto &[L, To] : List) {
        (void)To;
        Labels[L] = true;
      }
  return static_cast<uint32_t>(
      std::count(Labels.begin(), Labels.end(), true));
}

/// An action blocks when some assume carries a non-trivial guard.
bool mayBlock(const prog::ConcurrentProgram &P, Letter L) {
  const smt::TermManager &TM = P.termManager();
  for (const prog::Prim &Pr : P.action(L).Prims)
    if (Pr.K == prog::Prim::Kind::Assume && Pr.Guard != TM.mkTrue())
      return true;
  return false;
}

struct ChainEdge {
  Location From;
  Letter L;
  Location To;
};

/// One maximal fusable segment of a linear chain.
using Segment = std::vector<ChainEdge>;

} // namespace

FusionStats seqver::analysis::fuseTransactions(prog::ConcurrentProgram &P,
                                               const MoverAnalysis &Movers) {
  FusionStats Stats;
  Stats.AlphabetBefore = enabledAlphabet(P);
  Stats.StatesBefore = reachableLocations(P);

  // Collect every segment first; the rewrite appends letters, and the
  // classification is only defined for the original alphabet.
  std::vector<std::pair<int, Segment>> Plan;

  for (int T = 0; T < P.numThreads(); ++T) {
    const prog::ThreadCfg &Cfg = P.thread(T);
    const uint32_t N = Cfg.numLocations();

    std::vector<uint32_t> InDeg(N, 0);
    for (Location L = 0; L < N; ++L)
      for (const auto &[EL, To] : Cfg.Edges[L]) {
        (void)EL;
        ++InDeg[To];
      }

    // A location other threads can never observe a thread *entering and
    // leaving invisibly*: exactly one way in, one way out, not the entry
    // point, not an error sink. Loop heads (in-degree >= 2) and assert
    // branch points (out-degree >= 2) fail this by construction.
    auto Interior = [&](Location L) {
      return InDeg[L] == 1 && Cfg.Edges[L].size() == 1 &&
             L != Cfg.InitialLoc && !Cfg.IsErrorLoc[L];
    };

    // Walk each maximal linear chain. Chains start at non-interior
    // locations; a cycle made purely of interior locations has no entry
    // edge and is unreachable, so nothing is missed.
    for (Location Start = 0; Start < N; ++Start) {
      if (Interior(Start))
        continue;
      for (const auto &[FirstLetter, FirstTo] : Cfg.Edges[Start]) {
        std::vector<ChainEdge> Chain{{Start, FirstLetter, FirstTo}};
        std::set<Location> OnChain{Start, FirstTo};
        Location Cur = FirstTo;
        while (Interior(Cur)) {
          const auto &[NextLetter, NextTo] = Cfg.Edges[Cur].front();
          if (OnChain.count(NextTo))
            break; // cycle: never swallow a back edge
          Chain.push_back({Cur, NextLetter, NextTo});
          OnChain.insert(NextTo);
          Cur = NextTo;
        }

        // Greedy phase machine over the chain: R-phase takes right- and
        // both-movers (blocking allowed), the first other edge commits,
        // L-phase takes non-blocking left- and both-movers. An edge into
        // an error location is a hard barrier in either phase.
        size_t I = 0;
        while (I < Chain.size()) {
          size_t Begin = I;
          bool Committed = false;
          while (I < Chain.size()) {
            const ChainEdge &E = Chain[I];
            if (Cfg.IsErrorLoc[E.To])
              break; // assert failure stays its own transition
            MoverClass C = Movers.classOf(E.L);
            if (!Committed) {
              if (C != MoverClass::Both && C != MoverClass::Right)
                Committed = true; // this edge is the commit
              ++I;
            } else {
              if ((C == MoverClass::Both || C == MoverClass::Left) &&
                  !mayBlock(P, E.L))
                ++I;
              else
                break;
            }
          }
          if (I - Begin >= 2)
            Plan.emplace_back(
                T, Segment(Chain.begin() + Begin, Chain.begin() + I));
          if (I == Begin)
            ++I; // barrier edge: skip it and restart after
        }
      }
    }
  }

  for (const auto &[T, Seg] : Plan) {
    prog::Action Fused;
    Fused.ThreadId = T;
    for (const ChainEdge &E : Seg) {
      const prog::Action &A = P.action(E.L);
      if (!Fused.Name.empty())
        Fused.Name += "; ";
      Fused.Name += A.Name;
      Fused.Prims.insert(Fused.Prims.end(), A.Prims.begin(), A.Prims.end());
    }
    Letter NewL = P.addAction(std::move(Fused));
    for (const ChainEdge &E : Seg)
      P.removeEdge(T, E.From, E.L);
    P.addEdge(T, Seg.front().From, NewL, Seg.back().To);
    Stats.FusedEdges += static_cast<uint32_t>(Seg.size());
    ++Stats.Transactions;
  }

  Stats.AlphabetAfter = enabledAlphabet(P);
  Stats.StatesAfter = reachableLocations(P);
  return Stats;
}

FusionStats seqver::analysis::fuseTransactions(prog::ConcurrentProgram &P) {
  LockSetAnalysis Locks(P);
  MayAccessAnalysis Accesses(P);
  IntervalAnalysis Intervals(P);
  OctagonAnalysis Octagons(P);
  KarrAnalysis Karr(P);
  CongruenceAnalysis Congruences(P);
  std::vector<const InvariantSource *> Sources{&Intervals, &Octagons, &Karr,
                                               &Congruences};
  MoverAnalysis Movers(P, Locks, Accesses, Sources);
  return fuseTransactions(P, Movers);
}
