//===- analysis/Fusion.h - Lipton transaction fusion ----------------------===//
///
/// \file
/// Fuses maximal right-mover*·[commit]·left-mover* sequences within each
/// thread CFG into single transaction edges, before the interleaving
/// product is materialized. A fused transaction executes its constituent
/// statements atomically, so the product automaton never interleaves a
/// foreign action between them — the reduction the mover classification
/// (analysis/Movers.h) licenses.
///
/// Soundness is by construction; a segment is fused only when no other
/// thread can observe an intermediate state:
///
///  - Every intermediate location has in-degree 1 and out-degree 1, is not
///    the thread's initial location, not an error location and not
///    terminal, and the segment is acyclic — loop heads (in-degree >= 2)
///    and assert branch points (out-degree >= 2) are never swallowed.
///  - Pre-commit edges are right-movers or both-movers; they may block
///    (the canonical lock acquire): a run stuck mid-prefix commutes its
///    executed right-movers past all later foreign actions, landing back
///    on the segment's entry location, which survives fusion.
///  - The commit is the first non-right-mover edge and may be of any
///    class.
///  - Post-commit edges are left-movers or both-movers **and
///    non-blocking** (no assume with a non-trivial guard): they can always
///    run to completion, so a run stuck between commit and segment exit
///    cannot hide behavior — the completion exists and left-movers commute
///    it back against the commit.
///  - Edges into error locations are never part of a segment, so every
///    assertion check stays an individually scheduled transition.
///
/// Fused traces replay as contiguous unfused runs, so fusion never adds
/// behavior; the mover argument shows it never loses an error verdict.
///
//===----------------------------------------------------------------------===//

#ifndef SEQVER_ANALYSIS_FUSION_H
#define SEQVER_ANALYSIS_FUSION_H

#include "analysis/Movers.h"
#include "program/Program.h"

#include <cstdint>

namespace seqver {
namespace analysis {

/// What fusion did to the program (the fusion_* counters).
struct FusionStats {
  uint32_t FusedEdges = 0;     ///< original edges swallowed into transactions
  uint32_t Transactions = 0;   ///< fused transaction edges created
  uint32_t AlphabetBefore = 0; ///< letters labeling >= 1 edge, pre-fusion
  uint32_t AlphabetAfter = 0;  ///< letters labeling >= 1 edge, post-fusion
  uint32_t StatesBefore = 0;   ///< reachable thread locations, pre-fusion
  uint32_t StatesAfter = 0;    ///< reachable thread locations, post-fusion
};

/// Fuses transactions in place, guided by an existing classification
/// (which must have been computed over P in its current shape). New
/// letters are appended for the fused transactions; swallowed edges are
/// removed, their letters keep their numbers but stop being enabled.
FusionStats fuseTransactions(prog::ConcurrentProgram &P,
                             const MoverAnalysis &Movers);

/// Convenience seam for the verification pipelines: runs the lockset,
/// may-access and all registered invariant-domain analyses over P (as it
/// stands — prune first for the strongest classification), classifies
/// movers, and fuses. Equivalent to building a MoverAnalysis by hand.
FusionStats fuseTransactions(prog::ConcurrentProgram &P);

} // namespace analysis
} // namespace seqver

#endif // SEQVER_ANALYSIS_FUSION_H
