//===- analysis/LockSet.cpp - Lock discovery and MustLock dataflow --------===//

#include "analysis/LockSet.h"

#include "analysis/TermSet.h"

#include <algorithm>
#include <cassert>

using namespace seqver;
using namespace seqver::analysis;
using seqver::automata::Letter;
using seqver::prog::Action;
using seqver::prog::Location;
using seqver::prog::Prim;
using seqver::smt::Term;

namespace {

/// True if Guard has !Var as a top-level conjunct.
bool guardAssumesNot(const smt::TermManager &TM, Term Guard, Term Var) {
  (void)TM;
  if (Guard->kind() == smt::TermKind::Not && Guard->child(0) == Var)
    return true;
  if (Guard->kind() == smt::TermKind::And)
    for (Term Child : Guard->children())
      if (Child->kind() == smt::TermKind::Not && Child->child(0) == Var)
        return true;
  return false;
}

/// Classification of one action's effect on one candidate variable.
enum class WriteShape { None, Acquire, Release, Other };

WriteShape classifyWrite(const smt::TermManager &TM, const Action &A,
                         Term Var) {
  bool Writes = false;
  bool SetTrue = false;
  bool SetFalse = false;
  bool TestedBefore = false;
  bool SawTest = false;
  for (const Prim &P : A.Prims) {
    switch (P.K) {
    case Prim::Kind::Assume:
      if (guardAssumesNot(TM, P.Guard, Var))
        SawTest = true;
      break;
    case Prim::Kind::AssignBool:
      if (P.Var == Var) {
        Writes = true;
        if (P.BoolValue == TM.mkTrue()) {
          SetTrue = true;
          TestedBefore = SawTest;
        } else if (P.BoolValue == TM.mkFalse()) {
          SetFalse = true;
        } else {
          return WriteShape::Other; // data-dependent write
        }
      }
      break;
    case Prim::Kind::Havoc:
      if (P.Var == Var)
        return WriteShape::Other;
      break;
    case Prim::Kind::AssignInt:
      break;
    }
  }
  if (!Writes)
    return WriteShape::None;
  if (SetTrue && SetFalse)
    return WriteShape::Other; // toggles within one action
  if (SetTrue)
    return TestedBefore ? WriteShape::Acquire : WriteShape::Other;
  return WriteShape::Release;
}

} // namespace

bool LockInfo::isLock(Term Var) const { return termSetContains(Locks, Var); }

LockInfo seqver::analysis::discoverLocks(const prog::ConcurrentProgram &P) {
  const smt::TermManager &TM = P.termManager();
  LockInfo Info;
  Info.Acquires.assign(P.numLetters(), {});
  Info.Releases.assign(P.numLetters(), {});

  for (Term Var : P.globals()) {
    if (Var->sort() != smt::Sort::Bool)
      continue;
    bool HasAcquire = false;
    bool Disciplined = true;
    for (const Action &A : P.actions()) {
      switch (classifyWrite(TM, A, Var)) {
      case WriteShape::None:
      case WriteShape::Release:
        break;
      case WriteShape::Acquire:
        HasAcquire = true;
        break;
      case WriteShape::Other:
        Disciplined = false;
        break;
      }
      if (!Disciplined)
        break;
    }
    if (HasAcquire && Disciplined)
      termSetInsert(Info.Locks, Var);
  }

  for (const Action &A : P.actions()) {
    for (Term L : Info.Locks) {
      switch (classifyWrite(TM, A, L)) {
      case WriteShape::Acquire:
        termSetInsert(Info.Acquires[A.Letter], L);
        break;
      case WriteShape::Release:
        termSetInsert(Info.Releases[A.Letter], L);
        break;
      default:
        break;
      }
    }
  }
  return Info;
}

namespace {

/// Must-held lockset domain: facts are sorted lock vectors, joined by
/// intersection (held on *all* paths).
class MustLockDomain {
public:
  using Fact = std::vector<Term>;

  MustLockDomain(const LockInfo &Info) : Info(Info) {}

  Fact boundary() const { return {}; }

  bool join(Fact &Into, const Fact &From) const {
    Fact Merged;
    std::set_intersection(
        Into.begin(), Into.end(), From.begin(), From.end(),
        std::back_inserter(Merged),
        [](Term A, Term B) { return A->id() < B->id(); });
    bool Changed = Merged.size() != Into.size();
    Into = std::move(Merged);
    return Changed;
  }

  std::optional<Fact> transfer(const Action &A, const Fact &In) const {
    Fact Out = In;
    for (Term L : Info.Acquires[A.Letter])
      termSetInsert(Out, L);
    for (Term L : Info.Releases[A.Letter])
      termSetErase(Out, L);
    return Out;
  }

  void widen(Fact &) const {} // finite lattice: height <= #locks

private:
  const LockInfo &Info;
};

} // namespace

LockSetAnalysis::LockSetAnalysis(const prog::ConcurrentProgram &P)
    : P(P), Info(discoverLocks(P)) {
  int N = P.numThreads();
  HeldAt.resize(static_cast<size_t>(N));
  Reachable.resize(static_cast<size_t>(N));
  SourceLoc.assign(P.numLetters(), 0);
  for (int T = 0; T < N; ++T) {
    const prog::ThreadCfg &Cfg = P.thread(T);
    DataflowSolver<MustLockDomain> Solver(P, T, MustLockDomain(Info),
                                          Direction::Forward);
    Solver.run();
    auto &PerLoc = HeldAt[static_cast<size_t>(T)];
    auto &Reach = Reachable[static_cast<size_t>(T)];
    PerLoc.assign(Cfg.numLocations(), {});
    Reach.assign(Cfg.numLocations(), false);
    for (Location L = 0; L < Cfg.numLocations(); ++L) {
      if (const auto *Fact = Solver.at(L)) {
        PerLoc[L] = *Fact;
        Reach[L] = true;
      }
      for (const auto &[Letter, To] : Cfg.Edges[L]) {
        (void)To;
        SourceLoc[Letter] = L;
      }
    }
  }

  // Ownership validation: every reachable release of L must happen while the
  // releasing thread must-holds L. A release without ownership would let L
  // go false under another thread's critical section, breaking the mutual
  // exclusion argument, so such an L is not a lock. The must-lock facts of
  // distinct locks are independent, so demoting one lock leaves the others'
  // facts valid and no re-analysis is needed.
  std::vector<Term> Demoted;
  for (const Action &A : P.actions()) {
    if (!Reachable[static_cast<size_t>(A.ThreadId)][SourceLoc[A.Letter]])
      continue;
    for (Term L : Info.Releases[A.Letter])
      if (!termSetContains(heldAt(A.ThreadId, SourceLoc[A.Letter]), L) &&
          !termSetContains(Info.Acquires[A.Letter], L))
        termSetInsert(Demoted, L);
  }
  for (Term L : Demoted) {
    termSetErase(Info.Locks, L);
    for (Letter A = 0; A < P.numLetters(); ++A) {
      termSetErase(Info.Acquires[A], L);
      termSetErase(Info.Releases[A], L);
    }
    for (auto &PerLoc : HeldAt)
      for (auto &Held : PerLoc)
        termSetErase(Held, L);
  }
}

const std::vector<Term> &LockSetAnalysis::heldAt(int ThreadId,
                                                 Location Loc) const {
  return HeldAt[static_cast<size_t>(ThreadId)][Loc];
}

bool LockSetAnalysis::reachable(int ThreadId, Location Loc) const {
  return Reachable[static_cast<size_t>(ThreadId)][Loc];
}

std::vector<Term> LockSetAnalysis::actionLockset(Letter L) const {
  const Action &A = P.action(L);
  std::vector<Term> Out = heldAt(A.ThreadId, SourceLoc[L]);
  for (Term Lock : Info.Acquires[L])
    termSetInsert(Out, Lock);
  return Out;
}

bool LockSetAnalysis::commonLockHeld(Letter A, Letter B) const {
  std::vector<Term> LA = actionLockset(A);
  std::vector<Term> LB = actionLockset(B);
  for (Term L : LA)
    if (termSetContains(LB, L))
      return true;
  return false;
}
