//===- analysis/Dataflow.h - Monotone dataflow framework ------------------===//
///
/// \file
/// A reusable worklist solver for monotone dataflow problems over one
/// thread's control flow graph. Passes plug in a *domain* describing the
/// lattice and the transfer functions; the solver iterates to a fixpoint.
///
/// Domain concept (duck-typed; see MustLockDomain / IntervalDomain for
/// concrete instances):
///
///   struct Domain {
///     using Fact = ...;                    // lattice element, copyable
///     Fact boundary() const;               // fact at the entry boundary
///     bool join(Fact &Into, const Fact &From) const;   // true iff changed
///     std::optional<Fact> transfer(const prog::Action &A,
///                                  const Fact &In) const;
///     void widen(Fact &F) const;           // jump to a finite-height cover
///   };
///
/// `transfer` returning std::nullopt means the edge is infeasible under the
/// incoming fact (e.g. an assume guard that evaluates to false): nothing is
/// propagated to the target. Locations never reached by propagation keep no
/// fact at all — `at()` returns nullptr for them — which is what the
/// dead-edge pruning pass exploits.
///
/// Termination: the solver counts joins per location and calls `widen` on a
/// location's fact once the count passes WidenThreshold; domains with
/// infinite ascending chains (intervals) must make `widen` reach a finite
/// subdomain, finite domains can make it a no-op.
///
//===----------------------------------------------------------------------===//

#ifndef SEQVER_ANALYSIS_DATAFLOW_H
#define SEQVER_ANALYSIS_DATAFLOW_H

#include "program/Program.h"

#include <deque>
#include <optional>
#include <vector>

namespace seqver {
namespace analysis {

enum class Direction { Forward, Backward };

/// Worklist fixpoint solver for one thread CFG. The fact attached to a
/// location L is valid whenever the thread is at L:
///  - Forward: join over all paths from the entry to L.
///  - Backward: join over all paths from L to any terminal location.
template <typename Domain> class DataflowSolver {
public:
  using Fact = typename Domain::Fact;

  DataflowSolver(const prog::ConcurrentProgram &P, int ThreadId,
                 Domain D = Domain(), Direction Dir = Direction::Forward)
      : P(P), Cfg(P.thread(ThreadId)), D(std::move(D)), Dir(Dir) {}

  /// Runs to fixpoint; returns the number of edge-transfer applications
  /// (a proxy for solver work, used by tests and statistics).
  uint64_t run() {
    uint32_t N = Cfg.numLocations();
    Facts.assign(N, std::nullopt);
    JoinCounts.assign(N, 0);
    std::vector<bool> InList(N, false);
    std::deque<prog::Location> Worklist;
    auto Enqueue = [&](prog::Location L) {
      if (!InList[L]) {
        InList[L] = true;
        Worklist.push_back(L);
      }
    };

    // Edge orientation: Backward runs on the reversed CFG, with the
    // boundary fact seeded at every terminal location.
    std::vector<std::vector<std::pair<automata::Letter, prog::Location>>>
        Succ(N);
    if (Dir == Direction::Forward) {
      for (prog::Location L = 0; L < N; ++L)
        Succ[L] = Cfg.Edges[L];
      seed(Cfg.InitialLoc, Enqueue);
    } else {
      for (prog::Location From = 0; From < N; ++From)
        for (const auto &[Letter, To] : Cfg.Edges[From])
          Succ[To].emplace_back(Letter, From);
      for (prog::Location L = 0; L < N; ++L)
        if (Cfg.isTerminal(L))
          seed(L, Enqueue);
    }

    uint64_t Transfers = 0;
    while (!Worklist.empty()) {
      prog::Location Current = Worklist.front();
      Worklist.pop_front();
      InList[Current] = false;
      for (const auto &[Letter, To] : Succ[Current]) {
        ++Transfers;
        std::optional<Fact> Out = D.transfer(P.action(Letter), *Facts[Current]);
        if (!Out)
          continue; // infeasible edge under the current fact
        if (!Facts[To]) {
          Facts[To] = std::move(Out);
          Enqueue(To);
          continue;
        }
        if (D.join(*Facts[To], *Out)) {
          if (++JoinCounts[To] > WidenThreshold)
            D.widen(*Facts[To]);
          Enqueue(To);
        }
      }
    }
    return Transfers;
  }

  /// Fixpoint fact at a location, or nullptr if the location was never
  /// reached by propagation (unreachable under the domain's abstraction).
  const Fact *at(prog::Location L) const {
    return Facts[L] ? &*Facts[L] : nullptr;
  }

  const Domain &domain() const { return D; }

  /// Joins per location before widening kicks in. Small enough to bound
  /// runtime on interval chains, large enough not to fire on the lock and
  /// access domains (whose height is bounded by the variable count).
  static constexpr uint32_t WidenThreshold = 32;

private:
  template <typename Enq> void seed(prog::Location L, Enq &Enqueue) {
    if (!Facts[L])
      Facts[L] = D.boundary();
    else
      D.join(*Facts[L], D.boundary());
    Enqueue(L);
  }

  const prog::ConcurrentProgram &P;
  const prog::ThreadCfg &Cfg;
  Domain D;
  Direction Dir;
  std::vector<std::optional<Fact>> Facts;
  std::vector<uint32_t> JoinCounts;
};

} // namespace analysis
} // namespace seqver

#endif // SEQVER_ANALYSIS_DATAFLOW_H
