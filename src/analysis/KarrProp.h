//===- analysis/KarrProp.h - Thread-modular affine-equality propagation ---===//
///
/// \file
/// Karr's affine-equality domain (analysis/Karr.h) run thread-modularly on
/// the Dataflow framework, with the same interference abstraction as
/// IntervalProp and OctagonProp: per thread, only *trackable* variables
/// (globals written by no other thread) enter the universe, so per-location
/// equality systems are invariants of every product state in which the
/// thread occupies that location.
///
/// The pass is the third registered InvariantSource. It contributes what
/// the octagons' unit-coefficient fragment cannot: non-unit affine facts
/// like `total == 2*i` or `j == 2*i`, which the counting-proof workloads'
/// proofs hinge on. No widening is involved — the domain's ascending
/// chains are bounded by the universe size — so there is no narrowing
/// phase either; the ascending fixpoint is already the best one.
///
//===----------------------------------------------------------------------===//

#ifndef SEQVER_ANALYSIS_KARRPROP_H
#define SEQVER_ANALYSIS_KARRPROP_H

#include "analysis/InvariantSource.h"
#include "analysis/Karr.h"

#include <optional>
#include <vector>

namespace seqver {
namespace analysis {

/// Strengthens S with every affine-equality conjunct of Formula (boolean
/// variable literals pin the [0,1] encoding; other atoms are ignored).
/// Returns false iff Formula is infeasible under S — either an inserted
/// equality is inconsistent, or a (dis)equality/inequality conjunct
/// evaluates to false on S's pinned values. S is empty on false.
bool karrAssume(AffineSystem &S, const smt::TermManager &TM,
                smt::Term Formula);

/// Tri-state truth of Formula under S's equalities (atom sums ranged by
/// the pinned values; booleans through the [0,1] unary encoding).
Tri karrEval(const smt::TermManager &TM, const AffineSystem &S,
             smt::Term Formula);

class KarrAnalysis : public InvariantSource {
public:
  explicit KarrAnalysis(const prog::ConcurrentProgram &P);

  const char *name() const override { return "karr"; }

  /// Fixpoint equality system when ThreadId is at Loc; nullptr when
  /// unreachable.
  const AffineSystem *factAt(int ThreadId, prog::Location Loc) const;

  bool reachable(int ThreadId, prog::Location Loc) const override;
  Tri evalAt(int ThreadId, prog::Location Loc,
             smt::Term Formula) const override;
  const std::vector<DeadEdge> &deadEdges() const override { return Dead; }
  std::vector<smt::Term> invariantAtoms(int ThreadId,
                                        prog::Location Loc) const override;

  /// Variables trackable for ThreadId (shared with IntervalProp).
  const std::vector<smt::Term> &trackable(int ThreadId) const {
    return Trackable[static_cast<size_t>(ThreadId)];
  }

  /// Number of locations whose equality system has at least one genuinely
  /// affine row — two or more variables, or a non-unit coefficient — i.e.
  /// facts beyond both the interval and the octagon fragment; used by the
  /// --analyze report.
  size_t numAffineLocations() const;

private:
  std::vector<std::vector<smt::Term>> Trackable;
  /// Facts[thread][loc]; nullopt = unreachable.
  std::vector<std::vector<std::optional<AffineSystem>>> Facts;
  std::vector<DeadEdge> Dead;
};

} // namespace analysis
} // namespace seqver

#endif // SEQVER_ANALYSIS_KARRPROP_H
