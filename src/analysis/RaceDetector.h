//===- analysis/RaceDetector.h - Lockset-based static race detection ------===//
///
/// \file
/// Classic lockset (Eraser-style) race detection on top of the MustLock
/// facts: two actions of different threads *race* when their footprints
/// conflict on a shared non-lock variable and they do not hold a common
/// lock. Dually, a conflicting pair that always holds a common lock is
/// *statically independent*: the mutual-exclusion invariant of the lock
/// discipline (at most one thread can must-hold a given lock) means the two
/// actions can never be co-enabled, so their conflict can never materialize
/// in an execution.
///
/// The detector is a may-analysis: reported races are candidates (no
/// feasibility proof), but an empty report on a lock-disciplined program is
/// a proof of race freedom for the recognized discipline. Actions whose
/// source location is statically unreachable are skipped.
///
//===----------------------------------------------------------------------===//

#ifndef SEQVER_ANALYSIS_RACEDETECTOR_H
#define SEQVER_ANALYSIS_RACEDETECTOR_H

#include "analysis/IntervalProp.h"
#include "analysis/LockSet.h"
#include "program/Program.h"

#include <vector>

namespace seqver {
namespace analysis {

/// One racy action pair and the variables it races on.
struct Race {
  automata::Letter First;
  automata::Letter Second;
  /// Conflicting non-lock variables, sorted by term id.
  std::vector<smt::Term> Vars;
  /// True if some conflict is write/write (else write/read).
  bool WriteWrite;
};

/// A conflicting pair proven non-co-enabled by a common lock.
struct ProtectedPair {
  automata::Letter First;
  automata::Letter Second;
  /// A common lock both actions hold (witness).
  smt::Term Lock;
};

class RaceDetector {
public:
  /// Intervals may be null; when given, its sharper reachability (constant
  /// propagation can prove more locations dead) filters candidate actions.
  RaceDetector(const prog::ConcurrentProgram &P, const LockSetAnalysis &Locks,
               const IntervalAnalysis *Intervals = nullptr);

  const std::vector<Race> &races() const { return Races; }
  const std::vector<ProtectedPair> &protectedPairs() const {
    return Protected;
  }
  bool raceFree() const { return Races.empty(); }

private:
  std::vector<Race> Races;
  std::vector<ProtectedPair> Protected;
};

} // namespace analysis
} // namespace seqver

#endif // SEQVER_ANALYSIS_RACEDETECTOR_H
