//===- analysis/OctagonProp.cpp - Thread-modular octagon propagation ------===//

#include "analysis/OctagonProp.h"

#include "analysis/Dataflow.h"
#include "analysis/TermSet.h"

#include <algorithm>

using namespace seqver;
using namespace seqver::analysis;
using seqver::prog::Action;
using seqver::prog::Location;
using seqver::prog::Prim;
using seqver::smt::LinSum;
using seqver::smt::Term;
using seqver::smt::TermKind;

namespace {

/// Lookup adapter: boolean (and integer) variables through the octagon's
/// unary bounds.
struct OctEnv {
  const Octagon &O;
  mutable Interval Scratch;
  const Interval *operator()(Term Var) const {
    int K = O.indexOf(Var);
    if (K < 0)
      return nullptr;
    Scratch = O.intervalOf(K);
    return Scratch.isTop() ? nullptr : &Scratch;
  }
};

/// True when Sum is a +/-1 combination of at most two universe variables
/// (outputs in K1/S1, K2/S2; K2 == -1 for unary sums).
bool asUnitPair(const Octagon &O, const LinSum &Sum, int &K1, int &S1,
                int &K2, int &S2) {
  K1 = K2 = -1;
  S1 = S2 = 0;
  for (const auto &[Var, Coeff] : Sum.Terms) {
    if (Coeff != 1 && Coeff != -1)
      return false;
    int K = O.indexOf(Var);
    if (K < 0)
      return false;
    if (K1 < 0) {
      K1 = K;
      S1 = static_cast<int>(Coeff);
    } else if (K2 < 0) {
      K2 = K;
      S2 = static_cast<int>(Coeff);
    } else {
      return false;
    }
  }
  return K1 >= 0;
}

/// Records Sum <= 0 into O: a direct octagon constraint when the sum is a
/// unit pair, and residual-range unary refinement for every universe
/// variable regardless (mirrors detail::refineLe over the relational
/// ranges).
void octagonAssumeLe(Octagon &O, const LinSum &Sum) {
  int K1, S1, K2, S2;
  if (asUnitPair(O, Sum, K1, S1, K2, S2)) {
    // s1*x (+ s2*y) + c <= 0.
    if (K2 < 0)
      O.addUnary(K1, S1, -Sum.Constant);
    else
      O.addBinary(K1, S1, K2, S2, -Sum.Constant);
    return;
  }
  for (const auto &[Var, Coeff] : Sum.Terms) {
    int K = O.indexOf(Var);
    if (K < 0)
      continue;
    LinSum Rest = detail::residualSum(Sum, Var);
    Interval R = O.rangeOfSum(Rest);
    if (!R.HasLo)
      continue;
    // Coeff * V <= -Rest <= -R.Lo.
    if (Coeff > 0)
      O.addUnary(K, +1, floorDiv(-R.Lo, Coeff));
    else
      O.addUnary(K, -1, -ceilDiv(-R.Lo, Coeff));
  }
}

void octagonAssumeLiteral(Octagon &O, const smt::TermManager & /*TM*/,
                          Term C) {
  switch (C->kind()) {
  case TermKind::BoolConst:
    if (!C->boolValue())
      O.markEmpty();
    return;
  case TermKind::BoolVar: {
    int K = O.indexOf(C);
    if (K >= 0) {
      O.addUnary(K, +1, 1);
      O.addUnary(K, -1, -1);
    }
    return;
  }
  case TermKind::Not: {
    Term Inner = C->child(0);
    if (Inner->kind() == TermKind::BoolVar) {
      int K = O.indexOf(Inner);
      if (K >= 0) {
        O.addUnary(K, +1, 0);
        O.addUnary(K, -1, 0);
      }
    } else if (Inner->kind() == TermKind::AtomEq) {
      Interval R = O.rangeOfSum(Inner->sum());
      if (R.isExact() && R.Lo == 0)
        O.markEmpty();
    }
    return;
  }
  case TermKind::AtomLe:
    octagonAssumeLe(O, C->sum());
    return;
  case TermKind::AtomEq:
    octagonAssumeLe(O, C->sum());
    octagonAssumeLe(O, smt::TermManager::sumScale(C->sum(), -1));
    return;
  default:
    return; // disjunctive structure: left to the evaluator
  }
}

} // namespace

bool seqver::analysis::octagonAssume(Octagon &O, const smt::TermManager &TM,
                                     Term Formula, int Rounds) {
  const std::vector<Term> Single{Formula};
  const std::vector<Term> &Conjuncts =
      Formula->kind() == TermKind::And ? Formula->children() : Single;
  for (int Round = 0; Round < Rounds; ++Round) {
    for (Term C : Conjuncts)
      octagonAssumeLiteral(O, TM, C);
    if (!O.close())
      return false;
  }
  return true;
}

Tri seqver::analysis::octagonEval(const smt::TermManager &TM,
                                  const Octagon &O, Term Formula) {
  if (O.isEmpty())
    return Tri::Unknown; // callers treat empty as unreachable, not "false"
  OctEnv Env{O, {}};
  return evalTriOver(TM, Formula, Env, [&O](const LinSum &Sum) {
    return O.rangeOfSum(Sum);
  });
}

namespace {

class OctagonDomain {
public:
  using Fact = Octagon;

  OctagonDomain(const prog::ConcurrentProgram &P,
                const std::vector<Term> &Trackable)
      : P(P), TM(P.termManager()), Universe(Trackable) {}

  Fact boundary() const {
    Octagon O(Universe);
    for (size_t K = 0; K < Universe.size(); ++K) {
      Term Var = Universe[K];
      if (Var->sort() == smt::Sort::Bool) {
        // Booleans always live in [0,1].
        O.addUnary(static_cast<int>(K), +1, 1);
        O.addUnary(static_cast<int>(K), -1, 0);
      }
      if (!P.isGlobalConstrained(Var))
        continue;
      const smt::Assignment &Init = P.initialValues();
      int64_t V = Var->sort() == smt::Sort::Int
                      ? Init.intValue(Var)
                      : (Init.boolValue(Var) ? 1 : 0);
      O.addUnary(static_cast<int>(K), +1, V);
      O.addUnary(static_cast<int>(K), -1, -V);
    }
    O.close();
    return O;
  }

  bool join(Fact &Into, const Fact &From) const {
    return Into.joinWith(From);
  }

  std::optional<Fact> transfer(const Action &A, const Fact &In) const {
    if (In.isEmpty())
      return std::nullopt;
    Fact F = In;
    for (const Prim &Pr : A.Prims) {
      switch (Pr.K) {
      case Prim::Kind::Assume:
        if (octagonEval(TM, F, Pr.Guard) == Tri::False)
          return std::nullopt;
        if (!octagonAssume(F, TM, Pr.Guard))
          return std::nullopt;
        break;
      case Prim::Kind::AssignInt:
        transferAssignInt(F, Pr.Var, Pr.IntValue);
        break;
      case Prim::Kind::AssignBool: {
        int K = F.indexOf(Pr.Var);
        if (K < 0)
          break;
        switch (octagonEval(TM, F, Pr.BoolValue)) {
        case Tri::True:
          F.forget(K);
          F.addUnary(K, +1, 1);
          F.addUnary(K, -1, -1);
          break;
        case Tri::False:
          F.forget(K);
          F.addUnary(K, +1, 0);
          F.addUnary(K, -1, 0);
          break;
        case Tri::Unknown:
          F.forget(K);
          F.addUnary(K, +1, 1);
          F.addUnary(K, -1, 0);
          break;
        }
        break;
      }
      case Prim::Kind::Havoc: {
        int K = F.indexOf(Pr.Var);
        if (K >= 0) {
          F.forget(K);
          if (Pr.Var->sort() == smt::Sort::Bool) {
            F.addUnary(K, +1, 1);
            F.addUnary(K, -1, 0);
          }
        }
        break;
      }
      }
    }
    if (!F.close())
      return std::nullopt;
    return F;
  }

  void widen(Fact &F) const { F.widenToThresholds(); }

private:
  void transferAssignInt(Fact &F, Term Var, const LinSum &Value) const {
    int K = F.indexOf(Var);
    if (K < 0)
      return;
    const auto &Terms = Value.Terms;
    constexpr int64_t SmallC = Octagon::MaxFinite / 2;
    // Exact translation x := +/-x + c: rewrite all constraints in place.
    if (Terms.size() == 1 && Terms[0].first == Var &&
        (Terms[0].second == 1 || Terms[0].second == -1) &&
        Value.Constant < SmallC && Value.Constant > -SmallC) {
      F.assignShift(K, static_cast<int>(Terms[0].second), Value.Constant);
      return;
    }
    // Exact equality x := +/-y + c: forget x, then pin x - (+/-y) = c.
    if (Terms.size() == 1 && Terms[0].first != Var &&
        (Terms[0].second == 1 || Terms[0].second == -1) &&
        Value.Constant < SmallC && Value.Constant > -SmallC) {
      int Ky = F.indexOf(Terms[0].first);
      if (Ky >= 0) {
        int S = static_cast<int>(Terms[0].second);
        F.forget(K);
        F.addBinary(K, +1, Ky, -S, Value.Constant);
        F.addBinary(K, -1, Ky, S, -Value.Constant);
        return;
      }
    }
    // General right-hand side: take the unary range, plus a relational
    // bound against every unit universe variable of the sum (the residual
    // is evaluated on the pre-state; those variables are unchanged).
    Interval R = F.rangeOfSum(Value);
    struct RelBound {
      int Ky;
      int S;
      Interval Residual;
    };
    std::vector<RelBound> Rels;
    for (const auto &[Y, Coeff] : Terms) {
      if (Y == Var || (Coeff != 1 && Coeff != -1))
        continue;
      int Ky = F.indexOf(Y);
      if (Ky < 0)
        continue;
      LinSum Rest = detail::residualSum(Value, Y);
      Rels.push_back({Ky, static_cast<int>(Coeff), F.rangeOfSum(Rest)});
    }
    F.forget(K);
    if (R.HasHi)
      F.addUnary(K, +1, R.Hi);
    if (R.HasLo)
      F.addUnary(K, -1, -R.Lo);
    for (const RelBound &RB : Rels) {
      // x_new = s*y + rest: x - s*y is bounded by rest's pre-state range.
      if (RB.Residual.HasHi)
        F.addBinary(K, +1, RB.Ky, -RB.S, RB.Residual.Hi);
      if (RB.Residual.HasLo)
        F.addBinary(K, -1, RB.Ky, RB.S, -RB.Residual.Lo);
    }
  }

  const prog::ConcurrentProgram &P;
  const smt::TermManager &TM;
  const std::vector<Term> &Universe;
};

} // namespace

OctagonAnalysis::OctagonAnalysis(const prog::ConcurrentProgram &P)
    : InvariantSource(P) {
  int N = P.numThreads();
  Trackable = trackableVariables(P);

  Facts.resize(static_cast<size_t>(N));
  for (int T = 0; T < N; ++T) {
    const prog::ThreadCfg &Cfg = P.thread(T);
    OctagonDomain D(P, Trackable[static_cast<size_t>(T)]);
    DataflowSolver<OctagonDomain> Solver(P, T, D, Direction::Forward);
    Solver.run();
    auto &PerLoc = Facts[static_cast<size_t>(T)];
    PerLoc.assign(Cfg.numLocations(), std::nullopt);
    for (Location L = 0; L < Cfg.numLocations(); ++L)
      if (const Octagon *F = Solver.at(L))
        PerLoc[L] = *F;

    // Bounded narrowing: two descending passes re-derive every location
    // from its predecessors and meet with the ascending fixpoint. This
    // recovers most threshold-widening overshoot (e.g. a loop counter
    // widened past its bound snaps back to the guard's bound) and stays
    // sound: transfers are monotone and we only ever shrink facts that
    // started as a post-fixpoint.
    std::vector<std::vector<std::pair<Location, automata::Letter>>> In(
        Cfg.numLocations());
    for (Location From = 0; From < Cfg.numLocations(); ++From)
      for (const auto &[EdgeLetter, To] : Cfg.Edges[From])
        In[To].emplace_back(From, EdgeLetter);
    for (int Pass = 0; Pass < 2; ++Pass) {
      for (Location L = 0; L < Cfg.numLocations(); ++L) {
        std::optional<Octagon> New;
        if (L == Cfg.InitialLoc)
          New = D.boundary();
        for (const auto &[From, EdgeLetter] : In[L]) {
          if (!PerLoc[From])
            continue;
          std::optional<Octagon> Out =
              D.transfer(P.action(EdgeLetter), *PerLoc[From]);
          if (!Out)
            continue;
          if (!New)
            New = std::move(Out);
          else
            New->joinWith(*Out);
        }
        if (!PerLoc[L])
          continue;
        if (!New) {
          PerLoc[L] = std::nullopt; // no feasible way in: unreachable
          continue;
        }
        PerLoc[L]->meetWith(*New);
        if (!PerLoc[L]->close())
          PerLoc[L] = std::nullopt;
      }
    }

    for (Location L = 0; L < Cfg.numLocations(); ++L)
      for (const auto &[EdgeLetter, To] : Cfg.Edges[L]) {
        (void)To;
        bool IsDead =
            !PerLoc[L] || !D.transfer(P.action(EdgeLetter), *PerLoc[L]);
        if (IsDead)
          Dead.push_back({T, L, EdgeLetter});
      }
  }
}

const Octagon *OctagonAnalysis::factAt(int ThreadId, Location Loc) const {
  const auto &PerLoc = Facts[static_cast<size_t>(ThreadId)];
  if (Loc >= PerLoc.size() || !PerLoc[Loc])
    return nullptr;
  return &*PerLoc[Loc];
}

bool OctagonAnalysis::reachable(int ThreadId, Location Loc) const {
  return factAt(ThreadId, Loc) != nullptr;
}

Tri OctagonAnalysis::evalAt(int ThreadId, Location Loc, Term Formula) const {
  const Octagon *F = factAt(ThreadId, Loc);
  if (!F)
    return Tri::Unknown;
  return octagonEval(Prog.termManager(), *F, Formula);
}

std::vector<Term> OctagonAnalysis::invariantAtoms(int ThreadId,
                                                  Location Loc) const {
  std::vector<Term> Out;
  const Octagon *O = factAt(ThreadId, Loc);
  if (!O)
    return Out;
  smt::TermManager &TM = Prog.termManager();
  const auto &Vars = O->vars();

  for (size_t K = 0; K < Vars.size(); ++K) {
    Term Var = Vars[K];
    Interval I = O->intervalOf(static_cast<int>(K));
    if (Var->sort() == smt::Sort::Bool) {
      if (I.isExact())
        Out.push_back(I.Lo != 0 ? Var : TM.mkNot(Var));
      continue;
    }
    if (I.isExact()) {
      Out.push_back(TM.mkEq(TM.sumOfVar(Var), TM.sumOfConst(I.Lo)));
      continue;
    }
    if (I.HasHi)
      Out.push_back(TM.mkLe(TM.sumOfVar(Var), TM.sumOfConst(I.Hi)));
    if (I.HasLo)
      Out.push_back(TM.mkGe(TM.sumOfVar(Var), TM.sumOfConst(I.Lo)));
  }

  // Relational atoms between integer variables, skipping entries already
  // implied by the unary bounds.
  for (size_t K1 = 0; K1 < Vars.size(); ++K1) {
    if (Vars[K1]->sort() != smt::Sort::Int)
      continue;
    for (size_t K2 = K1 + 1; K2 < Vars.size(); ++K2) {
      if (Vars[K2]->sort() != smt::Sort::Int)
        continue;
      for (int S1 : {+1, -1})
        for (int S2 : {+1, -1}) {
          int64_t C = O->entry(Octagon::node(static_cast<int>(K1), S1),
                               Octagon::node(static_cast<int>(K2), -S2));
          if (C == Octagon::Inf)
            continue;
          int64_t U1 = O->unaryUpper(static_cast<int>(K1), S1);
          int64_t U2 = O->unaryUpper(static_cast<int>(K2), S2);
          if (U1 != Octagon::Inf && U2 != Octagon::Inf &&
              Octagon::satAdd(U1, U2) <= C)
            continue; // implied by the unary bounds
          LinSum Sum = smt::TermManager::sumAdd(
              smt::TermManager::sumScale(TM.sumOfVar(Vars[K1]), S1),
              smt::TermManager::sumScale(TM.sumOfVar(Vars[K2]), S2));
          Out.push_back(TM.mkLe(Sum, TM.sumOfConst(C)));
        }
    }
  }
  return Out;
}

size_t OctagonAnalysis::numRelationalLocations() const {
  size_t Count = 0;
  for (int T = 0; T < Prog.numThreads(); ++T) {
    const prog::ThreadCfg &Cfg = Prog.thread(T);
    for (Location L = 0; L < Cfg.numLocations(); ++L) {
      for (Term Atom : invariantAtoms(T, L))
        if (Atom->kind() == TermKind::AtomLe && Atom->sum().Terms.size() >= 2) {
          ++Count;
          break;
        }
    }
  }
  return Count;
}
