//===- analysis/CongruenceProp.cpp - Thread-modular congruence propagation ===//

#include "analysis/CongruenceProp.h"

#include "analysis/Dataflow.h"
#include "analysis/IntervalProp.h"

#include <algorithm>
#include <cstdlib>

using namespace seqver;
using namespace seqver::analysis;
using seqver::prog::Action;
using seqver::prog::Location;
using seqver::prog::Prim;
using seqver::smt::LinSum;
using seqver::smt::Term;
using seqver::smt::TermKind;

namespace {

int64_t gcdNonNeg(int64_t A, int64_t B) {
  while (B != 0) {
    int64_t T = A % B;
    A = B;
    B = T;
  }
  return A;
}

/// |A - B| in unsigned arithmetic (never overflows for int64 operands).
uint64_t absDiff(int64_t A, int64_t B) {
  return A >= B ? static_cast<uint64_t>(A) - static_cast<uint64_t>(B)
                : static_cast<uint64_t>(B) - static_cast<uint64_t>(A);
}

} // namespace

Congruence Congruence::of(int64_t R, int64_t M) {
  if (M <= 0)
    return exact(R);
  if (M == 1 || M > CongruenceModulusCap)
    return top();
  int64_t Res = R % M;
  if (Res < 0)
    Res += M;
  return {Res, M};
}

bool Congruence::contains(int64_t V) const {
  if (isTop())
    return true;
  if (isConst())
    return V == R;
  int64_t Res = V % M;
  if (Res < 0)
    Res += M;
  return Res == R;
}

Congruence seqver::analysis::congJoin(const Congruence &A,
                                      const Congruence &B) {
  if (A.isTop() || B.isTop())
    return Congruence::top();
  uint64_t Diff = absDiff(A.R, B.R);
  uint64_t M = static_cast<uint64_t>(gcdNonNeg(A.M, B.M));
  // gcd with the residue gap; gcd(0, d) = d covers the two-constants case.
  uint64_t G = M;
  uint64_t D = Diff;
  while (D != 0) {
    uint64_t T = G % D;
    G = D;
    D = T;
  }
  if (G == 0)
    return A; // equal constants
  if (G > static_cast<uint64_t>(CongruenceModulusCap))
    return Congruence::top();
  return Congruence::of(A.R, static_cast<int64_t>(G));
}

Congruence seqver::analysis::congAdd(const Congruence &A,
                                     const Congruence &B) {
  if (A.isTop() || B.isTop())
    return Congruence::top();
  __int128 R = static_cast<__int128>(A.R) + B.R;
  if (R < INT64_MIN || R > INT64_MAX)
    return Congruence::top();
  return Congruence::of(static_cast<int64_t>(R), gcdNonNeg(A.M, B.M));
}

Congruence seqver::analysis::congScale(const Congruence &A, int64_t Factor) {
  if (Factor == 0)
    return Congruence::exact(0);
  if (A.isTop())
    return Congruence::top();
  __int128 R = static_cast<__int128>(A.R) * Factor;
  __int128 M = static_cast<__int128>(A.M) * (Factor < 0 ? -Factor : Factor);
  if (R < INT64_MIN || R > INT64_MAX || M > CongruenceModulusCap)
    return Congruence::top();
  return Congruence::of(static_cast<int64_t>(R), static_cast<int64_t>(M));
}

Congruence seqver::analysis::congOfSum(const LinSum &Sum,
                                       const CongruenceFact &F) {
  Congruence Out = Congruence::exact(Sum.Constant);
  for (const auto &[Var, Coeff] : Sum.Terms) {
    auto It = F.find(Var);
    if (It == F.end())
      return Congruence::top();
    Out = congAdd(Out, congScale(It->second, Coeff));
    if (Out.isTop())
      return Out;
  }
  return Out;
}

Tri seqver::analysis::congEval(const smt::TermManager &TM,
                               const CongruenceFact &F, Term Formula) {
  switch (Formula->kind()) {
  case TermKind::BoolConst:
    return Formula->boolValue() ? Tri::True : Tri::False;
  case TermKind::IntVar:
    return Tri::Unknown;
  case TermKind::BoolVar: {
    auto It = F.find(Formula);
    if (It != F.end() && It->second.isConst())
      return It->second.R != 0 ? Tri::True : Tri::False;
    return Tri::Unknown;
  }
  case TermKind::AtomEq: {
    Congruence C = congOfSum(Formula->sum(), F);
    if (C.isConst())
      return C.R == 0 ? Tri::True : Tri::False;
    // Normalized residue: a nonzero R under modulus M > 1 means the sum is
    // never 0 — the divisibility refutation no exact-value domain makes.
    if (!C.isTop() && C.R != 0)
      return Tri::False;
    return Tri::Unknown;
  }
  case TermKind::AtomLe: {
    Congruence C = congOfSum(Formula->sum(), F);
    if (C.isConst())
      return C.R <= 0 ? Tri::True : Tri::False;
    return Tri::Unknown;
  }
  case TermKind::Not:
    return triNot(congEval(TM, F, Formula->child(0)));
  case TermKind::And: {
    Tri Acc = Tri::True;
    for (Term C : Formula->children()) {
      Tri T = congEval(TM, F, C);
      if (T == Tri::False)
        return Tri::False;
      if (T == Tri::Unknown)
        Acc = Tri::Unknown;
    }
    return Acc;
  }
  case TermKind::Or: {
    Tri Acc = Tri::False;
    for (Term C : Formula->children()) {
      Tri T = congEval(TM, F, C);
      if (T == Tri::True)
        return Tri::True;
      if (T == Tri::Unknown)
        Acc = Tri::Unknown;
    }
    return Acc;
  }
  case TermKind::Iff: {
    Tri A = congEval(TM, F, Formula->child(0));
    Tri B = congEval(TM, F, Formula->child(1));
    if (A == Tri::Unknown || B == Tri::Unknown)
      return Tri::Unknown;
    return A == B ? Tri::True : Tri::False;
  }
  }
  return Tri::Unknown;
}

namespace {

class CongruenceDomain {
public:
  using Fact = CongruenceFact;

  CongruenceDomain(const prog::ConcurrentProgram &P,
                   const std::vector<Term> &Trackable)
      : P(P), TM(P.termManager()), Universe(Trackable) {}

  bool tracked(Term Var) const {
    return std::binary_search(Universe.begin(), Universe.end(), Var,
                              [](Term A, Term B) { return A->id() < B->id(); });
  }

  Fact boundary() const {
    Fact F;
    for (Term Var : Universe) {
      if (!P.isGlobalConstrained(Var))
        continue;
      const smt::Assignment &Init = P.initialValues();
      int64_t V = Var->sort() == smt::Sort::Int
                      ? Init.intValue(Var)
                      : (Init.boolValue(Var) ? 1 : 0);
      F[Var] = Congruence::exact(V);
    }
    return F;
  }

  bool join(Fact &Into, const Fact &From) const {
    bool Changed = false;
    for (auto It = Into.begin(); It != Into.end();) {
      auto FromIt = From.find(It->first);
      Congruence Joined = FromIt == From.end()
                              ? Congruence::top()
                              : congJoin(It->second, FromIt->second);
      if (Joined.isTop()) {
        It = Into.erase(It);
        Changed = true;
        continue;
      }
      if (Joined != It->second) {
        It->second = Joined;
        Changed = true;
      }
      ++It;
    }
    return Changed;
  }

  /// Meets Var with C; false iff the meet is empty (infeasible). Only
  /// constant pins are intersected precisely; everything else keeps the
  /// stronger existing fact (sound: a meet may only be over-approximated).
  bool refine(Fact &F, Term Var, const Congruence &C) const {
    if (!tracked(Var) || C.isTop())
      return true;
    auto It = F.find(Var);
    if (It == F.end()) {
      F[Var] = C;
      return true;
    }
    if (It->second.isConst())
      return C.contains(It->second.R);
    if (C.isConst()) {
      if (!It->second.contains(C.R))
        return false;
      It->second = C;
      return true;
    }
    // Two proper congruences: keep the larger modulus (a genuine CRT meet
    // buys little on these workloads and risks modulus blow-up).
    if (C.M > It->second.M)
      It->second = C;
    return true;
  }

  /// Conjunct-wise strengthening of F with Guard; false iff infeasible.
  bool assume(Fact &F, Term Guard) const {
    const std::vector<Term> Single{Guard};
    const std::vector<Term> &Conjuncts =
        Guard->kind() == TermKind::And ? Guard->children() : Single;
    for (Term C : Conjuncts) {
      switch (C->kind()) {
      case TermKind::BoolConst:
        if (!C->boolValue())
          return false;
        break;
      case TermKind::BoolVar:
        if (!refine(F, C, Congruence::exact(1)))
          return false;
        break;
      case TermKind::Not:
        if (C->child(0)->kind() == TermKind::BoolVar &&
            !refine(F, C->child(0), Congruence::exact(0)))
          return false;
        break;
      case TermKind::AtomEq: {
        const LinSum &Sum = C->sum();
        if (Sum.Terms.size() != 1)
          break;
        auto [Var, Coeff] = Sum.Terms.front();
        if (Coeff == -1 && Sum.Constant == INT64_MIN)
          break; // quotient not representable
        // Coeff*Var + Constant == 0: divisibility decides feasibility.
        if (Sum.Constant % Coeff != 0)
          return false;
        if (!refine(F, Var, Congruence::exact(-(Sum.Constant / Coeff))))
          return false;
        break;
      }
      default:
        break;
      }
    }
    return true;
  }

  std::optional<Fact> transfer(const Action &A, const Fact &In) const {
    Fact F = In;
    for (const Prim &Pr : A.Prims) {
      switch (Pr.K) {
      case Prim::Kind::Assume:
        if (congEval(TM, F, Pr.Guard) == Tri::False)
          return std::nullopt;
        if (!assume(F, Pr.Guard))
          return std::nullopt;
        break;
      case Prim::Kind::AssignInt: {
        if (!tracked(Pr.Var))
          break;
        Congruence V = congOfSum(Pr.IntValue, F);
        if (V.isTop())
          F.erase(Pr.Var);
        else
          F[Pr.Var] = V;
        break;
      }
      case Prim::Kind::AssignBool: {
        if (!tracked(Pr.Var))
          break;
        switch (congEval(TM, F, Pr.BoolValue)) {
        case Tri::True:
          F[Pr.Var] = Congruence::exact(1);
          break;
        case Tri::False:
          F[Pr.Var] = Congruence::exact(0);
          break;
        case Tri::Unknown:
          F.erase(Pr.Var);
          break;
        }
        break;
      }
      case Prim::Kind::Havoc:
        F.erase(Pr.Var);
        break;
      }
    }
    return F;
  }

  /// No widening: every proper join strictly descends a divisor chain of
  /// the modulus (or drops a variable to top), so chains are logarithmic.
  void widen(Fact &) const {}

private:
  const prog::ConcurrentProgram &P;
  const smt::TermManager &TM;
  const std::vector<Term> &Universe;
};

} // namespace

CongruenceAnalysis::CongruenceAnalysis(const prog::ConcurrentProgram &P)
    : InvariantSource(P) {
  int N = P.numThreads();
  Trackable = trackableVariables(P);

  Facts.resize(static_cast<size_t>(N));
  for (int T = 0; T < N; ++T) {
    const prog::ThreadCfg &Cfg = P.thread(T);
    CongruenceDomain D(P, Trackable[static_cast<size_t>(T)]);
    DataflowSolver<CongruenceDomain> Solver(P, T, D, Direction::Forward);
    Solver.run();
    auto &PerLoc = Facts[static_cast<size_t>(T)];
    PerLoc.assign(Cfg.numLocations(), std::nullopt);
    for (Location L = 0; L < Cfg.numLocations(); ++L)
      if (const CongruenceFact *F = Solver.at(L))
        PerLoc[L] = *F;

    for (Location L = 0; L < Cfg.numLocations(); ++L)
      for (const auto &[EdgeLetter, To] : Cfg.Edges[L]) {
        (void)To;
        bool IsDead =
            !PerLoc[L] || !D.transfer(P.action(EdgeLetter), *PerLoc[L]);
        if (IsDead)
          Dead.push_back({T, L, EdgeLetter});
      }
  }
}

const CongruenceFact *CongruenceAnalysis::factAt(int ThreadId,
                                                 Location Loc) const {
  const auto &PerLoc = Facts[static_cast<size_t>(ThreadId)];
  if (Loc >= PerLoc.size() || !PerLoc[Loc])
    return nullptr;
  return &*PerLoc[Loc];
}

bool CongruenceAnalysis::reachable(int ThreadId, Location Loc) const {
  return factAt(ThreadId, Loc) != nullptr;
}

Tri CongruenceAnalysis::evalAt(int ThreadId, Location Loc,
                               Term Formula) const {
  const CongruenceFact *F = factAt(ThreadId, Loc);
  if (!F)
    return Tri::Unknown;
  return congEval(Prog.termManager(), *F, Formula);
}

std::vector<Term> CongruenceAnalysis::invariantAtoms(int ThreadId,
                                                     Location Loc) const {
  std::vector<Term> Out;
  const CongruenceFact *F = factAt(ThreadId, Loc);
  if (!F)
    return Out;
  smt::TermManager &TM = Prog.termManager();
  for (const auto &[Var, C] : *F) {
    if (!C.isConst())
      continue; // proper congruences have no linear-atom form
    if (Var->sort() == smt::Sort::Bool) {
      if (C.R == 1)
        Out.push_back(Var);
      else if (C.R == 0)
        Out.push_back(TM.mkNot(Var));
      continue;
    }
    Out.push_back(TM.mkEq(TM.sumOfVar(Var), TM.sumOfConst(C.R)));
  }
  return Out;
}

size_t CongruenceAnalysis::numCongruentLocations() const {
  size_t Count = 0;
  for (int T = 0; T < Prog.numThreads(); ++T) {
    const prog::ThreadCfg &Cfg = Prog.thread(T);
    for (Location L = 0; L < Cfg.numLocations(); ++L) {
      const CongruenceFact *F = factAt(T, L);
      if (!F)
        continue;
      for (const auto &[Var, C] : *F) {
        (void)Var;
        if (!C.isTop() && !C.isConst()) {
          ++Count;
          break;
        }
      }
    }
  }
  return Count;
}
