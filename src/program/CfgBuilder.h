//===- program/CfgBuilder.h - AST to concurrent program lowering ----------===//
///
/// \file
/// Lowers a parsed lang::Program into a ConcurrentProgram: structured
/// statements become control flow locations and edges, each edge carrying an
/// atomic Action. `atomic` blocks with branching are compiled by enumerating
/// the finitely many paths through the block, yielding one action per path
/// (the actions share source and target location but are distinct letters,
/// preserving per-state determinism of the thread DFA).
///
/// `assert e;` compiles to two edges: assume(e) to the continuation and
/// assume(!e) to a fresh error location, following the paper's assert-based
/// correctness setting (Sec. 6.1).
///
//===----------------------------------------------------------------------===//

#ifndef SEQVER_PROGRAM_CFGBUILDER_H
#define SEQVER_PROGRAM_CFGBUILDER_H

#include "lang/Ast.h"
#include "program/Program.h"

#include <memory>
#include <optional>
#include <string>

namespace seqver {
namespace prog {

/// Result of lowering: the program or a diagnostic message.
struct BuildResult {
  std::unique_ptr<ConcurrentProgram> Program;
  std::string Error;

  bool ok() const { return Program != nullptr; }
};

/// Lowers Prog (owned elsewhere) into a fresh ConcurrentProgram over TM.
BuildResult buildProgram(const lang::Program &Prog, smt::TermManager &TM);

/// Convenience: parse + lower in one step.
BuildResult buildFromSource(const std::string &Source, smt::TermManager &TM);

} // namespace prog
} // namespace seqver

#endif // SEQVER_PROGRAM_CFGBUILDER_H
