//===- program/CfgBuilder.cpp - AST to concurrent program lowering --------===//

#include "program/CfgBuilder.h"

#include "lang/Parser.h"

#include <cassert>
#include <map>

using namespace seqver;
using namespace seqver::prog;
using seqver::lang::Stmt;
using seqver::lang::StmtKind;
using seqver::lang::StmtPtr;
using seqver::smt::Term;
using seqver::smt::TermManager;

namespace {

/// Lowers one thread body into locations and edges. Uses a union-find over
/// provisional locations so that structured control flow can join blocks
/// without epsilon edges: an epsilon connector simply merges two locations.
class ThreadLowerer {
public:
  ThreadLowerer(ConcurrentProgram &Program, TermManager &TM, int ThreadId,
                std::string ThreadName)
      : Program(Program), TM(TM), ThreadId(ThreadId),
        ThreadName(std::move(ThreadName)) {}

  /// Lowers Body; returns an error message or empty string.
  std::string lower(const std::vector<StmtPtr> &Body) {
    uint32_t Entry = newLoc();
    uint32_t Exit = lowerSeq(Body, Entry);
    (void)Exit;
    if (!ErrorMessage.empty())
      return ErrorMessage;
    finalize(Entry);
    return "";
  }

private:
  struct ProvEdge {
    uint32_t From;
    uint32_t To;
    std::vector<Prim> Prims;
    std::string Name;
  };

  uint32_t newLoc() {
    UnionFind.push_back(static_cast<uint32_t>(UnionFind.size()));
    return UnionFind.back();
  }

  uint32_t find(uint32_t Loc) {
    while (UnionFind[Loc] != Loc) {
      UnionFind[Loc] = UnionFind[UnionFind[Loc]];
      Loc = UnionFind[Loc];
    }
    return Loc;
  }

  void merge(uint32_t A, uint32_t B) { UnionFind[find(A)] = find(B); }

  void addEdge(uint32_t From, uint32_t To, std::vector<Prim> Prims,
               std::string Name) {
    Edges.push_back({From, To, std::move(Prims), std::move(Name)});
  }

  uint32_t errorLoc() {
    if (!ErrLoc)
      ErrLoc = newLoc();
    return *ErrLoc;
  }

  Prim assumePrim(Term Guard) {
    Prim P;
    P.K = Prim::Kind::Assume;
    P.Guard = Guard;
    return P;
  }

  std::string edgeName(const char *Kind, int Line) {
    return ThreadName + "." + Kind + "@" + std::to_string(Line);
  }

  uint32_t lowerSeq(const std::vector<StmtPtr> &Stmts, uint32_t Entry) {
    uint32_t Current = Entry;
    for (const StmtPtr &S : Stmts) {
      Current = lowerStmt(*S, Current);
      if (!ErrorMessage.empty())
        return Current;
    }
    return Current;
  }

  uint32_t lowerStmt(const Stmt &S, uint32_t Entry) {
    switch (S.Kind) {
    case StmtKind::Skip:
      return Entry;

    case StmtKind::Assume: {
      uint32_t Exit = newLoc();
      addEdge(Entry, Exit, {assumePrim(S.Cond)}, edgeName("assume", S.Line));
      return Exit;
    }

    case StmtKind::Assert: {
      uint32_t Exit = newLoc();
      addEdge(Entry, Exit, {assumePrim(S.Cond)}, edgeName("assert_ok", S.Line));
      addEdge(Entry, errorLoc(), {assumePrim(TM.mkNot(S.Cond))},
              edgeName("assert_fail", S.Line));
      return Exit;
    }

    case StmtKind::Assign: {
      uint32_t Exit = newLoc();
      Prim P;
      if (S.Var->sort() == smt::Sort::Bool) {
        P.K = Prim::Kind::AssignBool;
        P.BoolValue = S.BoolValue;
      } else {
        P.K = Prim::Kind::AssignInt;
        P.IntValue = S.IntValue;
      }
      P.Var = S.Var;
      addEdge(Entry, Exit, {P},
              edgeName(("assign_" + S.Var->name()).c_str(), S.Line));
      return Exit;
    }

    case StmtKind::Havoc: {
      uint32_t Exit = newLoc();
      Prim P;
      P.K = Prim::Kind::Havoc;
      P.Var = S.Var;
      addEdge(Entry, Exit, {P},
              edgeName(("havoc_" + S.Var->name()).c_str(), S.Line));
      return Exit;
    }

    case StmtKind::Atomic: {
      uint32_t Exit = newLoc();
      std::vector<std::vector<Prim>> Paths;
      Paths.emplace_back();
      enumeratePaths(S.Body, Paths);
      if (!ErrorMessage.empty())
        return Exit;
      for (size_t I = 0; I < Paths.size(); ++I) {
        std::string Name = edgeName("atomic", S.Line);
        if (Paths.size() > 1)
          Name += "#" + std::to_string(I);
        addEdge(Entry, Exit, std::move(Paths[I]), std::move(Name));
      }
      return Exit;
    }

    case StmtKind::While: {
      uint32_t Exit = newLoc();
      uint32_t BodyEntry = newLoc();
      Term Cond = S.Cond ? S.Cond : TM.mkTrue();
      Term NegCond = S.Cond ? TM.mkNot(S.Cond) : TM.mkTrue();
      addEdge(Entry, BodyEntry, {assumePrim(Cond)},
              edgeName(S.Cond ? "while_true" : "while_enter", S.Line));
      addEdge(Entry, Exit, {assumePrim(NegCond)},
              edgeName(S.Cond ? "while_false" : "while_exit", S.Line));
      uint32_t BodyExit = lowerSeq(S.Body, BodyEntry);
      merge(BodyExit, Entry); // back edge
      return Exit;
    }

    case StmtKind::If: {
      uint32_t Exit = newLoc();
      Term Cond = S.Cond ? S.Cond : TM.mkTrue();
      Term NegCond = S.Cond ? TM.mkNot(S.Cond) : TM.mkTrue();
      uint32_t Then = newLoc();
      addEdge(Entry, Then, {assumePrim(Cond)},
              edgeName(S.Cond ? "if_true" : "if_left", S.Line));
      merge(lowerSeq(S.Body, Then), Exit);
      uint32_t Else = newLoc();
      addEdge(Entry, Else, {assumePrim(NegCond)},
              edgeName(S.Cond ? "if_false" : "if_right", S.Line));
      merge(lowerSeq(S.ElseBody, Else), Exit);
      return Exit;
    }
    }
    assert(false && "unhandled statement kind");
    return Entry;
  }

  /// Cross-product path enumeration for atomic blocks (parser guarantees no
  /// loops / asserts / nested atomics inside).
  void enumeratePaths(const std::vector<StmtPtr> &Stmts,
                      std::vector<std::vector<Prim>> &Paths) {
    for (const StmtPtr &SP : Stmts) {
      const Stmt &S = *SP;
      switch (S.Kind) {
      case StmtKind::Skip:
        break;
      case StmtKind::Assume:
        for (auto &Path : Paths)
          Path.push_back(assumePrim(S.Cond));
        break;
      case StmtKind::Assign: {
        Prim P;
        if (S.Var->sort() == smt::Sort::Bool) {
          P.K = Prim::Kind::AssignBool;
          P.BoolValue = S.BoolValue;
        } else {
          P.K = Prim::Kind::AssignInt;
          P.IntValue = S.IntValue;
        }
        P.Var = S.Var;
        for (auto &Path : Paths)
          Path.push_back(P);
        break;
      }
      case StmtKind::Havoc: {
        Prim P;
        P.K = Prim::Kind::Havoc;
        P.Var = S.Var;
        for (auto &Path : Paths)
          Path.push_back(P);
        break;
      }
      case StmtKind::If: {
        Term Cond = S.Cond ? S.Cond : TM.mkTrue();
        Term NegCond = S.Cond ? TM.mkNot(S.Cond) : TM.mkTrue();
        std::vector<std::vector<Prim>> ThenPaths = Paths;
        for (auto &Path : ThenPaths)
          Path.push_back(assumePrim(Cond));
        enumeratePaths(S.Body, ThenPaths);
        std::vector<std::vector<Prim>> ElsePaths = std::move(Paths);
        for (auto &Path : ElsePaths)
          Path.push_back(assumePrim(NegCond));
        enumeratePaths(S.ElseBody, ElsePaths);
        Paths = std::move(ThenPaths);
        Paths.insert(Paths.end(),
                     std::make_move_iterator(ElsePaths.begin()),
                     std::make_move_iterator(ElsePaths.end()));
        break;
      }
      default:
        ErrorMessage = "statement not allowed inside 'atomic' (line " +
                       std::to_string(S.Line) + ")";
        return;
      }
    }
  }

  /// Resolves the union-find, renumbers locations densely, and registers the
  /// thread and its actions with the program.
  void finalize(uint32_t Entry) {
    ThreadCfg Cfg;
    Cfg.Name = ThreadName;
    std::map<uint32_t, Location> Remap;
    auto Resolve = [&](uint32_t Prov) -> Location {
      uint32_t Root = find(Prov);
      auto It = Remap.find(Root);
      if (It != Remap.end())
        return It->second;
      bool IsError = ErrLoc && find(*ErrLoc) == Root;
      Location Loc = Cfg.addLocation(IsError);
      Remap.emplace(Root, Loc);
      return Loc;
    };
    Cfg.InitialLoc = Resolve(Entry);
    // Resolve edge endpoints first so that location numbering follows
    // creation order reasonably.
    for (ProvEdge &E : Edges) {
      Location From = Resolve(E.From);
      Location To = Resolve(E.To);
      Action A;
      A.ThreadId = ThreadId;
      A.Name = std::move(E.Name);
      A.Prims = std::move(E.Prims);
      automata::Letter L = Program.addAction(std::move(A));
      Cfg.addEdge(From, L, To);
    }
    int Id = Program.addThread(std::move(Cfg));
    (void)Id;
    assert(Id == ThreadId && "thread id drifted");
  }

  ConcurrentProgram &Program;
  TermManager &TM;
  int ThreadId;
  std::string ThreadName;
  std::vector<uint32_t> UnionFind;
  std::vector<ProvEdge> Edges;
  std::optional<uint32_t> ErrLoc;
  std::string ErrorMessage;
};

} // namespace

BuildResult seqver::prog::buildProgram(const lang::Program &Prog,
                                       TermManager &TM) {
  BuildResult Result;
  auto Program = std::make_unique<ConcurrentProgram>(TM);
  for (const lang::VarDecl &Decl : Prog.Globals) {
    if (!Decl.HasInit)
      Program->addGlobalUnconstrained(Decl.Var);
    else if (Decl.IsBool)
      Program->addGlobalBool(Decl.Var, Decl.BoolInit);
    else
      Program->addGlobalInt(Decl.Var, Decl.IntInit);
  }
  Program->setSpec(Prog.Pre, Prog.Post);
  for (size_t I = 0; I < Prog.Threads.size(); ++I) {
    ThreadLowerer Lowerer(*Program, TM, static_cast<int>(I),
                          Prog.Threads[I].Name);
    std::string Error = Lowerer.lower(Prog.Threads[I].Body);
    if (!Error.empty()) {
      Result.Error = "thread '" + Prog.Threads[I].Name + "': " + Error;
      return Result;
    }
  }
  Result.Program = std::move(Program);
  return Result;
}

BuildResult seqver::prog::buildFromSource(const std::string &Source,
                                          TermManager &TM) {
  lang::ParseResult Parsed = lang::parseProgram(Source, TM);
  if (!Parsed.ok()) {
    BuildResult Result;
    Result.Error = Parsed.Error;
    return Result;
  }
  return buildProgram(*Parsed.Prog, TM);
}
