//===- program/Semantics.cpp - Symbolic semantics of actions --------------===//

#include "program/Semantics.h"

#include <cassert>

using namespace seqver;
using namespace seqver::prog;
using seqver::smt::LinSum;
using seqver::smt::Sort;
using seqver::smt::Substitution;
using seqver::smt::Term;
using seqver::smt::TermManager;

Term seqver::prog::wpAction(TermManager &TM, const Action &A, Term Post,
                            FreshVarSource &Fresh) {
  Term Result = Post;
  // Fold the primitives right to left.
  for (size_t I = A.Prims.size(); I > 0; --I) {
    const Prim &P = A.Prims[I - 1];
    switch (P.K) {
    case Prim::Kind::Assume:
      Result = TM.mkImplies(P.Guard, Result);
      break;
    case Prim::Kind::AssignInt: {
      Substitution Subst;
      Subst.IntMap[P.Var] = P.IntValue;
      Result = TM.substitute(Result, Subst);
      break;
    }
    case Prim::Kind::AssignBool: {
      Substitution Subst;
      Subst.BoolMap[P.Var] = P.BoolValue;
      Result = TM.substitute(Result, Subst);
      break;
    }
    case Prim::Kind::Havoc: {
      Substitution Subst;
      if (P.Var->sort() == Sort::Int)
        Subst.IntMap[P.Var] = TM.sumOfVar(Fresh.fresh(Sort::Int));
      else
        Subst.BoolMap[P.Var] = Fresh.fresh(Sort::Bool);
      Result = TM.substitute(Result, Subst);
      break;
    }
    }
  }
  return Result;
}

LinSum SymbolicState::intValue(TermManager &TM, Term Var) const {
  auto It = Values.IntMap.find(Var);
  return It == Values.IntMap.end() ? TM.sumOfVar(Var) : It->second;
}

Term SymbolicState::boolValue(Term Var) const {
  auto It = Values.BoolMap.find(Var);
  return It == Values.BoolMap.end() ? Var : It->second;
}

SymbolicState seqver::prog::symbolicIdentity(TermManager &TM) {
  SymbolicState State;
  State.Guard = TM.mkTrue();
  return State;
}

void seqver::prog::applySymbolic(
    TermManager &TM, const Action &A, SymbolicState &State,
    std::map<std::pair<automata::Letter, size_t>, Term> &CanonicalHavoc) {
  for (size_t I = 0; I < A.Prims.size(); ++I) {
    const Prim &P = A.Prims[I];
    switch (P.K) {
    case Prim::Kind::Assume:
      // Evaluate the guard in the current symbolic state.
      State.Guard =
          TM.mkAnd(State.Guard, TM.substitute(P.Guard, State.Values));
      break;
    case Prim::Kind::AssignInt: {
      // Evaluate the rhs in the current state, then bind.
      LinSum Value = TM.sumOfConst(P.IntValue.Constant);
      for (const auto &[Var, Coeff] : P.IntValue.Terms)
        Value = TermManager::sumAdd(
            Value, TermManager::sumScale(State.intValue(TM, Var), Coeff));
      State.Values.IntMap[P.Var] = std::move(Value);
      break;
    }
    case Prim::Kind::AssignBool:
      State.Values.BoolMap[P.Var] =
          TM.substitute(P.BoolValue, State.Values);
      break;
    case Prim::Kind::Havoc: {
      auto Key = std::make_pair(A.Letter, I);
      auto It = CanonicalHavoc.find(Key);
      Term FreshVar;
      if (It != CanonicalHavoc.end()) {
        FreshVar = It->second;
      } else {
        FreshVar = TM.mkVar("havoc!" + std::to_string(A.Letter) + "!" +
                                std::to_string(I),
                            P.Var->sort());
        CanonicalHavoc.emplace(Key, FreshVar);
      }
      if (P.Var->sort() == Sort::Int)
        State.Values.IntMap[P.Var] = TM.sumOfVar(FreshVar);
      else
        State.Values.BoolMap[P.Var] = FreshVar;
      break;
    }
    }
  }
}
