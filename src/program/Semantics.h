//===- program/Semantics.h - Symbolic semantics of actions ----------------===//
///
/// \file
/// Weakest preconditions and symbolic composition for program actions.
///
/// - wp drives the Floyd/Hoare annotation of infeasible traces during
///   refinement (a sound stand-in for interpolation; see DESIGN.md) and the
///   Hoare-triple checks of the proof automaton.
/// - Symbolic composition supports the commutativity checks of Sec. 7
///   (including conditional commutativity, Def. 7.3): two actions commute
///   under phi iff composing them in either order yields equivalent guards
///   and final values, assuming phi in the initial state.
///
/// Havoc is handled with globally fresh variables: the universally
/// quantified wp of havoc is expressed by substituting a fresh symbol, which
/// is exact for the validity checks performed here (free variables of closed
/// queries are implicitly universally quantified).
///
//===----------------------------------------------------------------------===//

#ifndef SEQVER_PROGRAM_SEMANTICS_H
#define SEQVER_PROGRAM_SEMANTICS_H

#include "program/Program.h"
#include "smt/Term.h"

#include <cstdint>
#include <map>

namespace seqver {
namespace prog {

/// Generates globally fresh variables (for havoc). One instance is shared
/// per verification run so names never collide.
class FreshVarSource {
public:
  explicit FreshVarSource(smt::TermManager &TM) : TM(TM) {}

  smt::Term fresh(smt::Sort S) {
    return TM.mkVar("havoc!" + std::to_string(Counter++),
                    S);
  }

private:
  smt::TermManager &TM;
  uint64_t Counter = 0;
};

/// wp(A, Post): the weakest precondition of action A for postcondition Post.
smt::Term wpAction(smt::TermManager &TM, const Action &A, smt::Term Post,
                   FreshVarSource &Fresh);

/// A symbolic state: current value of each modified variable, plus the
/// accumulated guard. Unmodified variables implicitly map to themselves.
struct SymbolicState {
  smt::Substitution Values;
  smt::Term Guard = nullptr; ///< set by makeIdentity

  /// Current symbolic value of an integer variable.
  smt::LinSum intValue(smt::TermManager &TM, smt::Term Var) const;
  /// Current symbolic value of a boolean variable.
  smt::Term boolValue(smt::Term Var) const;
};

/// Identity state with guard true.
SymbolicState symbolicIdentity(smt::TermManager &TM);

/// Applies action A to State in place. CanonicalHavoc maps (action letter,
/// prim index) to a stable fresh variable so that the same havoc occurrence
/// produces the same symbol in both composition orders.
void applySymbolic(smt::TermManager &TM, const Action &A,
                   SymbolicState &State,
                   std::map<std::pair<automata::Letter, size_t>, smt::Term>
                       &CanonicalHavoc);

} // namespace prog
} // namespace seqver

#endif // SEQVER_PROGRAM_SEMANTICS_H
