//===- program/Interpreter.h - Concrete execution of programs -------------===//
///
/// \file
/// A concrete interpreter and a small explicit-state model checker.
///
/// The interpreter replays traces (e.g., bug witnesses from the verifier)
/// against concrete program states. The model checker exhaustively explores
/// (product location, store) states of *finite-state* instances and is the
/// test oracle that the verifier's verdicts are checked against; it is not
/// part of the verification algorithm.
///
//===----------------------------------------------------------------------===//

#ifndef SEQVER_PROGRAM_INTERPRETER_H
#define SEQVER_PROGRAM_INTERPRETER_H

#include "program/Program.h"
#include "smt/Evaluator.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace seqver {
namespace prog {

/// Applies action A to Store. Returns false (leaving Store partially
/// updated) if an assume inside the action fails, i.e. the action is not
/// executable from this store. HavocValues supplies values for havoc
/// primitives in order; missing entries default to 0/false.
bool executeAction(const ConcurrentProgram &P, const Action &A,
                   smt::Assignment &Store,
                   const std::vector<int64_t> *HavocValues = nullptr);

/// Replays Word from the initial store; returns the final store if every
/// action is executable (a feasible execution), nullopt otherwise.
std::optional<smt::Assignment>
replayTrace(const ConcurrentProgram &P,
            const std::vector<automata::Letter> &Word);

/// Result of explicit-state exploration.
struct ReachResult {
  bool ErrorReachable = false;
  /// Witness trace if an error is reachable.
  std::vector<automata::Letter> Witness;
  /// True if the exploration hit the state limit (verdict not exhaustive).
  bool Overflow = false;
  uint64_t StatesExplored = 0;
};

/// Explores all reachable (locations, store) states, trying the given values
/// for every havoc. Intended for finite-state test programs.
ReachResult explicitReach(const ConcurrentProgram &P, uint64_t MaxStates,
                          const std::vector<int64_t> &HavocChoices = {0, 1});

/// Random concrete testing: NumWalks random executions of at most MaxSteps
/// actions each (uniform choice among executable actions; havocs draw small
/// values). Returns a feasible error trace if one is stumbled upon --
/// useful as a quick smoke test before running the verifier, and as a
/// contrast between testing and verification in the examples.
std::optional<std::vector<automata::Letter>>
randomWalkForBug(const ConcurrentProgram &P, uint64_t Seed,
                 uint64_t NumWalks = 1000, uint64_t MaxSteps = 200);

} // namespace prog
} // namespace seqver

#endif // SEQVER_PROGRAM_INTERPRETER_H
