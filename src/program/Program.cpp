//===- program/Program.cpp - Concurrent program model ---------------------===//

#include "program/Program.h"

#include "automata/Explore.h"

#include <algorithm>
#include <cassert>

using namespace seqver;
using namespace seqver::prog;
using seqver::automata::Letter;
using seqver::smt::Term;

bool Action::writesVar(Term V) const {
  return std::binary_search(Writes.begin(), Writes.end(), V,
                            [](Term A, Term B) { return A->id() < B->id(); });
}

bool Action::readsVar(Term V) const {
  return std::binary_search(Reads.begin(), Reads.end(), V,
                            [](Term A, Term B) { return A->id() < B->id(); });
}

bool Action::footprintConflictsWith(const Action &Other) const {
  for (Term W : Writes)
    if (Other.writesVar(W) || Other.readsVar(W))
      return true;
  for (Term W : Other.Writes)
    if (readsVar(W))
      return true;
  return false;
}

void ThreadCfg::addEdge(Location From, Letter L, Location To) {
  assert(From < numLocations() && To < numLocations() && "bad location");
  assert(!IsErrorLoc[From] && "error locations have no outgoing edges");
  auto &List = Edges[From];
  auto It = std::lower_bound(
      List.begin(), List.end(), L,
      [](const std::pair<Letter, Location> &Entry, Letter Value) {
        return Entry.first < Value;
      });
  assert((It == List.end() || It->first != L) && "duplicate letter on edge");
  List.insert(It, {L, To});
}

bool ThreadCfg::containsAssert() const {
  for (bool IsError : IsErrorLoc)
    if (IsError)
      return true;
  return false;
}

namespace {

/// Computes sorted/unique read and write sets of an action.
void computeFootprint(const smt::TermManager &TM, Action &A) {
  std::vector<Term> Reads, Writes;
  for (const Prim &P : A.Prims) {
    switch (P.K) {
    case Prim::Kind::Assume:
      TM.collectVars(P.Guard, Reads);
      break;
    case Prim::Kind::AssignInt:
      Writes.push_back(P.Var);
      for (const auto &[Var, Coeff] : P.IntValue.Terms) {
        (void)Coeff;
        Reads.push_back(Var);
      }
      break;
    case Prim::Kind::AssignBool:
      Writes.push_back(P.Var);
      TM.collectVars(P.BoolValue, Reads);
      break;
    case Prim::Kind::Havoc:
      Writes.push_back(P.Var);
      break;
    }
  }
  auto ById = [](Term X, Term Y) { return X->id() < Y->id(); };
  std::sort(Reads.begin(), Reads.end(), ById);
  Reads.erase(std::unique(Reads.begin(), Reads.end()), Reads.end());
  std::sort(Writes.begin(), Writes.end(), ById);
  Writes.erase(std::unique(Writes.begin(), Writes.end()), Writes.end());
  A.Reads = std::move(Reads);
  A.Writes = std::move(Writes);
}

} // namespace

Letter ConcurrentProgram::addAction(Action A) {
  A.Letter = numLetters();
  computeFootprint(TM, A);
  Actions.push_back(std::move(A));
  return Actions.back().Letter;
}

int ConcurrentProgram::addThread(ThreadCfg Cfg) {
  Threads.push_back(std::move(Cfg));
  int Id = numThreads() - 1;
  // Every letter on this thread's edges must belong to this thread.
  for (const auto &List : Threads.back().Edges)
    for (const auto &[L, To] : List) {
      (void)To;
      assert(Actions[L].ThreadId == Id && "edge letter owned by other thread");
    }
  return Id;
}

void ConcurrentProgram::addGlobalInt(Term Var, int64_t Init) {
  Globals.push_back(Var);
  GlobalConstrained.push_back(true);
  InitialState.IntValues[Var] = Init;
}

void ConcurrentProgram::addGlobalBool(Term Var, bool Init) {
  Globals.push_back(Var);
  GlobalConstrained.push_back(true);
  InitialState.BoolValues[Var] = Init;
}

void ConcurrentProgram::addGlobalUnconstrained(Term Var) {
  Globals.push_back(Var);
  GlobalConstrained.push_back(false);
  if (Var->sort() == smt::Sort::Int)
    InitialState.IntValues[Var] = 0;
  else
    InitialState.BoolValues[Var] = false;
}

void ConcurrentProgram::setSpec(Term Pre, Term Post) {
  if (Pre)
    Requires = Pre;
  if (Post)
    Ensures = Post;
}

Term ConcurrentProgram::preCondition() const {
  return Requires ? Requires : TM.mkTrue();
}

Term ConcurrentProgram::postCondition() const {
  return Ensures ? Ensures : TM.mkTrue();
}

bool ConcurrentProgram::hasPostCondition() const {
  return Ensures && Ensures != TM.mkTrue();
}

bool ConcurrentProgram::isGlobalConstrained(Term Var) const {
  for (size_t I = 0; I < Globals.size(); ++I)
    if (Globals[I] == Var)
      return GlobalConstrained[I];
  return false;
}

bool ConcurrentProgram::removeEdge(int ThreadId, Location From, Letter L) {
  auto &List = Threads[static_cast<size_t>(ThreadId)].Edges[From];
  for (auto It = List.begin(); It != List.end(); ++It)
    if (It->first == L) {
      List.erase(It);
      return true;
    }
  return false;
}

void ConcurrentProgram::addEdge(int ThreadId, Location From, Letter L,
                                Location To) {
  assert(Actions[L].ThreadId == ThreadId && "edge letter owned by other thread");
  Threads[static_cast<size_t>(ThreadId)].addEdge(From, L, To);
}

uint32_t ConcurrentProgram::size() const {
  uint32_t Total = 0;
  for (const ThreadCfg &T : Threads)
    Total += T.numLocations();
  return Total;
}

Term ConcurrentProgram::initialConstraint() const {
  std::vector<Term> Conjuncts;
  for (size_t I = 0; I < Globals.size(); ++I) {
    if (!GlobalConstrained[I])
      continue;
    Term Var = Globals[I];
    if (Var->sort() == smt::Sort::Int) {
      smt::LinSum Sum = TM.sumOfVar(Var);
      Sum.Constant -= InitialState.intValue(Var);
      Conjuncts.push_back(TM.mkEqZero(Sum));
    } else {
      Conjuncts.push_back(InitialState.boolValue(Var) ? Var : TM.mkNot(Var));
    }
  }
  Conjuncts.push_back(preCondition());
  return TM.mkAnd(std::move(Conjuncts));
}

ProductState ConcurrentProgram::initialProductState() const {
  ProductState S;
  S.reserve(Threads.size());
  for (const ThreadCfg &T : Threads)
    S.push_back(T.InitialLoc);
  return S;
}

bool ConcurrentProgram::isErrorState(const ProductState &S) const {
  for (size_t I = 0; I < Threads.size(); ++I)
    if (Threads[I].IsErrorLoc[S[I]])
      return true;
  return false;
}

bool ConcurrentProgram::isAllExitState(const ProductState &S) const {
  for (size_t I = 0; I < Threads.size(); ++I)
    if (!Threads[I].isTerminal(S[I]) || Threads[I].IsErrorLoc[S[I]])
      return false;
  return true;
}

std::vector<std::pair<Letter, ProductState>>
ConcurrentProgram::successors(const ProductState &S) const {
  std::vector<std::pair<Letter, ProductState>> Out;
  if (isErrorState(S))
    return Out; // error states absorb: the violation witness is complete
  for (size_t I = 0; I < Threads.size(); ++I) {
    for (const auto &[L, To] : Threads[I].Edges[S[I]]) {
      ProductState Next = S;
      Next[I] = To;
      Out.emplace_back(L, std::move(Next));
    }
  }
  std::sort(Out.begin(), Out.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  return Out;
}

std::vector<Letter>
ConcurrentProgram::threadEnabled(int ThreadId, const ProductState &S) const {
  std::vector<Letter> Out;
  const ThreadCfg &T = Threads[static_cast<size_t>(ThreadId)];
  for (const auto &[L, To] : T.Edges[S[static_cast<size_t>(ThreadId)]]) {
    (void)To;
    Out.push_back(L);
  }
  return Out;
}

namespace {

struct ProductAutomaton {
  using StateType = ProductState;
  const ConcurrentProgram &P;
  AcceptMode Mode;

  StateType initialState() { return P.initialProductState(); }
  bool isAccepting(const StateType &S) {
    return Mode == AcceptMode::Error ? P.isErrorState(S)
                                     : P.isAllExitState(S);
  }
  std::vector<std::pair<Letter, StateType>> successors(const StateType &S) {
    return P.successors(S);
  }
};

} // namespace

automata::Dfa ConcurrentProgram::explicitProduct(AcceptMode Mode,
                                                 uint32_t MaxStates,
                                                 bool *Overflow) const {
  ProductAutomaton Impl{*this, Mode};
  auto Result = automata::materialize(Impl, numLetters(), MaxStates, Overflow);
  return std::move(Result.Automaton);
}

std::vector<std::string> ConcurrentProgram::letterNames() const {
  std::vector<std::string> Names;
  Names.reserve(Actions.size());
  for (const Action &A : Actions)
    Names.push_back(A.Name);
  return Names;
}
