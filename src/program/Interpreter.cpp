//===- program/Interpreter.cpp - Concrete execution of programs -----------===//

#include "program/Interpreter.h"

#include "support/Random.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>

using namespace seqver;
using namespace seqver::prog;
using seqver::automata::Letter;
using seqver::smt::Assignment;
using seqver::smt::Sort;
using seqver::smt::Term;

bool seqver::prog::executeAction(const ConcurrentProgram &P, const Action &A,
                                 Assignment &Store,
                                 const std::vector<int64_t> *HavocValues) {
  (void)P;
  size_t HavocIndex = 0;
  for (const Prim &Pr : A.Prims) {
    switch (Pr.K) {
    case Prim::Kind::Assume:
      if (!smt::evalFormula(Pr.Guard, Store))
        return false;
      break;
    case Prim::Kind::AssignInt:
      Store.IntValues[Pr.Var] = smt::evalSum(Pr.IntValue, Store);
      break;
    case Prim::Kind::AssignBool:
      Store.BoolValues[Pr.Var] = smt::evalFormula(Pr.BoolValue, Store);
      break;
    case Prim::Kind::Havoc: {
      int64_t Value = 0;
      if (HavocValues && HavocIndex < HavocValues->size())
        Value = (*HavocValues)[HavocIndex];
      ++HavocIndex;
      if (Pr.Var->sort() == Sort::Int)
        Store.IntValues[Pr.Var] = Value;
      else
        Store.BoolValues[Pr.Var] = Value != 0;
      break;
    }
    }
  }
  return true;
}

std::optional<Assignment>
seqver::prog::replayTrace(const ConcurrentProgram &P,
                          const std::vector<Letter> &Word) {
  ProductState Locations = P.initialProductState();
  Assignment Store = P.initialValues();
  for (Letter L : Word) {
    const Action &A = P.action(L);
    // Follow the CFG edge of the owning thread.
    const ThreadCfg &T = P.thread(A.ThreadId);
    Location Current = Locations[static_cast<size_t>(A.ThreadId)];
    std::optional<Location> Target;
    for (const auto &[EdgeLetter, To] : T.Edges[Current])
      if (EdgeLetter == L)
        Target = To;
    if (!Target)
      return std::nullopt; // word is not a run of the product
    if (!executeAction(P, A, Store))
      return std::nullopt; // infeasible: an assume failed
    Locations[static_cast<size_t>(A.ThreadId)] = *Target;
  }
  return Store;
}

namespace {

/// Serializes the store over the program's declared globals plus locations.
struct ExplicitState {
  ProductState Locations;
  std::vector<int64_t> Store; // globals in declaration order (bools as 0/1)

  bool operator<(const ExplicitState &Other) const {
    if (Locations != Other.Locations)
      return Locations < Other.Locations;
    return Store < Other.Store;
  }
};

std::vector<int64_t> serializeStore(const ConcurrentProgram &P,
                                    const Assignment &Store) {
  std::vector<int64_t> Out;
  Out.reserve(P.globals().size());
  for (Term Var : P.globals())
    Out.push_back(Var->sort() == Sort::Int ? Store.intValue(Var)
                                           : (Store.boolValue(Var) ? 1 : 0));
  return Out;
}

Assignment deserializeStore(const ConcurrentProgram &P,
                            const std::vector<int64_t> &Values) {
  Assignment Store;
  for (size_t I = 0; I < P.globals().size(); ++I) {
    Term Var = P.globals()[I];
    if (Var->sort() == Sort::Int)
      Store.IntValues[Var] = Values[I];
    else
      Store.BoolValues[Var] = Values[I] != 0;
  }
  return Store;
}

size_t countHavocs(const Action &A) {
  size_t Count = 0;
  for (const Prim &P : A.Prims)
    if (P.K == Prim::Kind::Havoc)
      ++Count;
  return Count;
}

} // namespace

ReachResult
seqver::prog::explicitReach(const ConcurrentProgram &P, uint64_t MaxStates,
                            const std::vector<int64_t> &HavocChoices) {
  ReachResult Result;
  std::map<ExplicitState, std::pair<ExplicitState, Letter>> Parent;
  std::deque<ExplicitState> Worklist;

  ExplicitState Init{P.initialProductState(),
                     serializeStore(P, P.initialValues())};
  Parent.emplace(Init, std::make_pair(Init, Letter(0)));
  Worklist.push_back(Init);

  auto IsInit = [&Init](const ExplicitState &State) {
    return State.Locations == Init.Locations && State.Store == Init.Store;
  };
  auto BuildWitness = [&](ExplicitState State) {
    std::vector<Letter> Witness;
    while (!IsInit(State)) {
      auto It = Parent.find(State);
      assert(It != Parent.end() && "witness state without parent");
      Witness.push_back(It->second.second);
      State = It->second.first;
    }
    std::reverse(Witness.begin(), Witness.end());
    return Witness;
  };

  while (!Worklist.empty()) {
    ExplicitState Current = Worklist.front();
    Worklist.pop_front();
    ++Result.StatesExplored;

    if (P.isErrorState(Current.Locations)) {
      Result.ErrorReachable = true;
      Result.Witness = BuildWitness(Current);
      return Result;
    }
    if (MaxStates != 0 && Parent.size() >= MaxStates) {
      Result.Overflow = true;
      return Result;
    }

    Assignment Store = deserializeStore(P, Current.Store);
    for (const auto &[L, NextLocations] : P.successors(Current.Locations)) {
      const Action &A = P.action(L);
      size_t NumHavocs = countHavocs(A);

      // Enumerate havoc value tuples (|HavocChoices|^NumHavocs, all zeros if
      // the action has no havoc).
      size_t Combos = 1;
      for (size_t I = 0; I < NumHavocs; ++I)
        Combos *= HavocChoices.size();
      if (NumHavocs == 0)
        Combos = 1;
      for (size_t Combo = 0; Combo < Combos; ++Combo) {
        std::vector<int64_t> HavocValues;
        size_t Rest = Combo;
        for (size_t I = 0; I < NumHavocs; ++I) {
          HavocValues.push_back(HavocChoices[Rest % HavocChoices.size()]);
          Rest /= HavocChoices.size();
        }
        Assignment NextStore = Store;
        if (!executeAction(P, A, NextStore, &HavocValues))
          continue;
        ExplicitState Next{NextLocations, serializeStore(P, NextStore)};
        if (Parent.emplace(Next, std::make_pair(Current, L)).second)
          Worklist.push_back(Next);
      }
    }
  }
  return Result;
}

std::optional<std::vector<Letter>>
seqver::prog::randomWalkForBug(const ConcurrentProgram &P, uint64_t Seed,
                               uint64_t NumWalks, uint64_t MaxSteps) {
  Rng R(Seed);
  for (uint64_t Walk = 0; Walk < NumWalks; ++Walk) {
    ProductState Locations = P.initialProductState();
    Assignment Store = P.initialValues();
    std::vector<Letter> Trace;
    for (uint64_t Step = 0; Step < MaxSteps; ++Step) {
      if (P.isErrorState(Locations))
        return Trace;
      auto Successors = P.successors(Locations);
      if (Successors.empty())
        break;
      // Collect the executable successors from this store.
      std::vector<std::pair<Letter, ProductState>> Executable;
      std::vector<Assignment> NextStores;
      for (auto &[L, NextLocations] : Successors) {
        std::vector<int64_t> HavocValues;
        for (size_t I = 0; I < countHavocs(P.action(L)); ++I)
          HavocValues.push_back(R.range(-2, 2));
        Assignment Next = Store;
        if (!executeAction(P, P.action(L), Next, &HavocValues))
          continue;
        Executable.emplace_back(L, NextLocations);
        NextStores.push_back(std::move(Next));
      }
      if (Executable.empty())
        break; // deadlocked under this schedule
      size_t Pick = R.below(Executable.size());
      Trace.push_back(Executable[Pick].first);
      Locations = std::move(Executable[Pick].second);
      Store = std::move(NextStores[Pick]);
    }
    if (P.isErrorState(Locations))
      return Trace;
  }
  return std::nullopt;
}
