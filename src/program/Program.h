//===- program/Program.h - Concurrent program model -----------------------===//
///
/// \file
/// The concurrent program model of Sec. 3: a fixed number of threads, each a
/// control flow graph interpreted as a DFA over that thread's statement
/// alphabet; the program is their interleaving product. Correctness is
/// specified with assert statements (compiled to error locations), matching
/// the paper's implementation (Sec. 6.1 footnote and Sec. 8).
///
/// Each CFG edge is its own alphabet letter (an Action): thread alphabets are
/// disjoint by construction and per-state determinism is trivial.
///
//===----------------------------------------------------------------------===//

#ifndef SEQVER_PROGRAM_PROGRAM_H
#define SEQVER_PROGRAM_PROGRAM_H

#include "automata/Dfa.h"
#include "smt/Evaluator.h"
#include "smt/Term.h"

#include <optional>
#include <string>
#include <vector>

namespace seqver {
namespace prog {

/// A primitive state transformer; Actions are sequences of these.
struct Prim {
  enum class Kind : uint8_t { Assume, AssignInt, AssignBool, Havoc };

  Kind K = Kind::Assume;
  smt::Term Guard = nullptr;   ///< Assume
  smt::Term Var = nullptr;     ///< AssignInt/AssignBool/Havoc target
  smt::LinSum IntValue;        ///< AssignInt rhs
  smt::Term BoolValue = nullptr; ///< AssignBool rhs
};

/// An atomic program action: the payload of one CFG edge and one letter of
/// the program alphabet.
struct Action {
  automata::Letter Letter = 0;
  int ThreadId = -1;
  std::string Name;
  std::vector<Prim> Prims;
  /// Sorted, deduplicated variable footprints (filled by finalize()).
  std::vector<smt::Term> Reads;
  std::vector<smt::Term> Writes;

  bool writesVar(smt::Term V) const;
  bool readsVar(smt::Term V) const;
  /// True if the footprints overlap in a way that can make the two actions
  /// non-commutative (write/write or write/read overlap).
  bool footprintConflictsWith(const Action &Other) const;
};

using Location = uint32_t;

/// One thread's control flow graph. Locations are dense indices; the exit
/// location has no outgoing edges (Sec. 3); error locations (from asserts)
/// also have none.
struct ThreadCfg {
  std::string Name;
  Location InitialLoc = 0;
  std::vector<bool> IsErrorLoc;
  /// Outgoing edges per location, sorted by letter.
  std::vector<std::vector<std::pair<automata::Letter, Location>>> Edges;

  uint32_t numLocations() const {
    return static_cast<uint32_t>(Edges.size());
  }
  Location addLocation(bool IsError = false) {
    Edges.emplace_back();
    IsErrorLoc.push_back(IsError);
    return numLocations() - 1;
  }
  void addEdge(Location From, automata::Letter L, Location To);
  /// A location is terminal when it has no outgoing edges.
  bool isTerminal(Location Loc) const { return Edges[Loc].empty(); }
  bool containsAssert() const;
};

/// Product state: one location per thread.
using ProductState = std::vector<Location>;

/// Acceptance mode for the explicit product automaton.
enum class AcceptMode {
  AllExit, ///< all threads at a terminal, non-error location (L(P), Sec. 3)
  Error,   ///< some thread at an error location (assert-violation traces)
};

/// A complete concurrent program over a shared TermManager.
class ConcurrentProgram {
public:
  explicit ConcurrentProgram(smt::TermManager &TM) : TM(TM) {}

  smt::TermManager &termManager() const { return TM; }

  /// Registers an action; returns its letter.
  automata::Letter addAction(Action A);
  int addThread(ThreadCfg Cfg);

  /// Declares a global with its initial value.
  void addGlobalInt(smt::Term Var, int64_t Init);
  void addGlobalBool(smt::Term Var, bool Init);
  /// Declares a global without an initializer: the verifier treats its
  /// initial value as arbitrary (havoc at program start); the concrete
  /// interpreter defaults it to 0 / false.
  void addGlobalUnconstrained(smt::Term Var);

  /// Pre/postcondition specification (Sec. 3). Defaults to (true, true);
  /// null arguments mean "keep true". The postcondition is checked at
  /// all-exit states in addition to the assert-based error locations.
  void setSpec(smt::Term Pre, smt::Term Post);
  /// Precondition (never null; true if unspecified).
  smt::Term preCondition() const;
  /// Postcondition (never null; true if unspecified).
  smt::Term postCondition() const;
  /// True if a nontrivial postcondition must be checked at exit.
  bool hasPostCondition() const;

  uint32_t numLetters() const {
    return static_cast<uint32_t>(Actions.size());
  }
  int numThreads() const { return static_cast<int>(Threads.size()); }
  const Action &action(automata::Letter L) const { return Actions[L]; }
  const std::vector<Action> &actions() const { return Actions; }
  const ThreadCfg &thread(int Id) const {
    return Threads[static_cast<size_t>(Id)];
  }

  /// size(P) = sum of thread sizes (number of control locations, Sec. 3).
  uint32_t size() const;

  /// Removes one CFG edge (used by dead-edge pruning). The action stays
  /// registered and keeps its letter — only the edge disappears, so letters
  /// never need remapping; the pruned letter simply stops being enabled.
  /// Returns false if no such edge exists.
  bool removeEdge(int ThreadId, Location From, automata::Letter L);

  /// Adds one CFG edge to an existing thread (used by transaction fusion
  /// to install the fused edge). The letter must belong to ThreadId.
  void addEdge(int ThreadId, Location From, automata::Letter L, Location To);

  const smt::Assignment &initialValues() const { return InitialState; }
  /// True if Var was declared with an initializer (its entry in
  /// initialValues() is binding rather than an interpreter default).
  bool isGlobalConstrained(smt::Term Var) const;
  /// Conjunction of  var == initial value  over all initialized globals,
  /// and of the precondition; unconstrained globals are left free.
  smt::Term initialConstraint() const;
  const std::vector<smt::Term> &globals() const { return Globals; }

  ProductState initialProductState() const;
  bool isErrorState(const ProductState &S) const;
  bool isAllExitState(const ProductState &S) const;

  /// Letters enabled in S (error states have no successors), in increasing
  /// letter order.
  std::vector<std::pair<automata::Letter, ProductState>>
  successors(const ProductState &S) const;

  /// Enabled letters of one thread at its current location in S.
  std::vector<automata::Letter> threadEnabled(int ThreadId,
                                              const ProductState &S) const;

  /// Explicit interleaving product automaton (exponential; tests and small
  /// experiments only). MaxStates = 0 means unlimited.
  automata::Dfa explicitProduct(AcceptMode Mode, uint32_t MaxStates = 0,
                                bool *Overflow = nullptr) const;

  /// Names of all letters (for printing / dot output).
  std::vector<std::string> letterNames() const;

private:
  smt::TermManager &TM;
  std::vector<Action> Actions;
  std::vector<ThreadCfg> Threads;
  std::vector<smt::Term> Globals;
  std::vector<bool> GlobalConstrained; // parallel to Globals
  smt::Assignment InitialState;
  smt::Term Requires = nullptr;
  smt::Term Ensures = nullptr;
};

} // namespace prog
} // namespace seqver

#endif // SEQVER_PROGRAM_PROGRAM_H
