//===- bench/bench_reduction_sizes.cpp - Thm. 4.3 / 7.2 sizes -------------===//
///
/// Regenerates the space-complexity claims of Sec. 4 and Sec. 7: under a
/// thread-uniform preference order and full commutativity, the combined
/// sleep-set + persistent-set construction has O(size(P)) reachable states
/// (Thm. 7.2), while the interleaving product (and the sleep-set-only
/// automaton) grow exponentially in the number of threads. Uses the
/// independent-threads family; also microbenchmarks construction time with
/// google-benchmark.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "reduction/SleepSet.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace seqver;
using seqver::bench::printTableHeader;
using seqver::bench::printTableRow;

namespace {

/// n independent threads, each a chain of Steps private increments.
std::unique_ptr<prog::ConcurrentProgram>
makeIndependent(smt::TermManager &TM, int NumThreads, int Steps) {
  auto P = std::make_unique<prog::ConcurrentProgram>(TM);
  for (int T = 0; T < NumThreads; ++T) {
    prog::ThreadCfg Cfg;
    Cfg.Name = "t" + std::to_string(T);
    prog::Location Prev = Cfg.addLocation();
    Cfg.InitialLoc = Prev;
    smt::Term V = TM.mkVar("v" + std::to_string(T), smt::Sort::Int);
    for (int K = 0; K < Steps; ++K) {
      prog::Action A;
      A.ThreadId = T;
      A.Name = Cfg.Name + "#" + std::to_string(K);
      prog::Prim Pr;
      Pr.K = prog::Prim::Kind::AssignInt;
      Pr.Var = V;
      smt::LinSum Sum = TM.sumOfVar(V);
      Sum.Constant += 1;
      Pr.IntValue = Sum;
      A.Prims.push_back(Pr);
      prog::Location Next = Cfg.addLocation();
      Cfg.addEdge(Prev, P->addAction(std::move(A)), Next);
      Prev = Next;
    }
    P->addThread(std::move(Cfg));
  }
  return P;
}

struct SizeRow {
  int Threads;
  uint32_t ProgramSize;
  uint32_t ProductStates;
  uint32_t SleepOnlyStates;
  uint32_t CombinedStates;
};

SizeRow measure(int NumThreads, int Steps) {
  smt::TermManager TM;
  smt::QueryEngine QE(TM);
  auto P = makeIndependent(TM, NumThreads, Steps);
  red::CommutativityChecker Commut(
      *P, QE, red::CommutativityChecker::Mode::Syntactic);
  red::SequentialOrder Order(*P);

  SizeRow Row;
  Row.Threads = NumThreads;
  Row.ProgramSize = P->size();
  Row.ProductStates =
      P->explicitProduct(prog::AcceptMode::AllExit).numStates();

  red::ReductionConfig SleepOnly;
  SleepOnly.UsePersistentSets = false;
  SleepOnly.Mode = prog::AcceptMode::AllExit;
  Row.SleepOnlyStates =
      red::buildReduction(*P, &Order, Commut, SleepOnly)
          .Automaton.numReachableStates();

  red::ReductionConfig Combined;
  Combined.Mode = prog::AcceptMode::AllExit;
  Row.CombinedStates =
      red::buildReduction(*P, &Order, Commut, Combined)
          .Automaton.numReachableStates();
  return Row;
}

void BM_CombinedReduction(benchmark::State &State) {
  int NumThreads = static_cast<int>(State.range(0));
  for (auto _ : State) {
    smt::TermManager TM;
    smt::QueryEngine QE(TM);
    auto P = makeIndependent(TM, NumThreads, 3);
    red::CommutativityChecker Commut(
        *P, QE, red::CommutativityChecker::Mode::Syntactic);
    red::SequentialOrder Order(*P);
    red::ReductionConfig Config;
    Config.Mode = prog::AcceptMode::AllExit;
    auto R = red::buildReduction(*P, &Order, Commut, Config);
    benchmark::DoNotOptimize(R.Automaton.numStates());
  }
}
BENCHMARK(BM_CombinedReduction)->DenseRange(2, 6)->Unit(
    benchmark::kMillisecond);

void BM_ExplicitProduct(benchmark::State &State) {
  int NumThreads = static_cast<int>(State.range(0));
  for (auto _ : State) {
    smt::TermManager TM;
    auto P = makeIndependent(TM, NumThreads, 3);
    auto D = P->explicitProduct(prog::AcceptMode::AllExit);
    benchmark::DoNotOptimize(D.numStates());
  }
}
BENCHMARK(BM_ExplicitProduct)->DenseRange(2, 6)->Unit(
    benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  std::printf("== Reduction sizes (Thm. 4.3 / Thm. 7.2): independent "
              "threads, 3 actions each, seq order ==\n\n");
  printTableHeader({"threads", "size(P)", "product", "sleep-only",
                    "combined"},
                   {8, 8, 9, 11, 9});
  bool Linear = true;
  for (int N = 2; N <= 7; ++N) {
    SizeRow Row = measure(N, 3);
    printTableRow({std::to_string(Row.Threads),
                   std::to_string(Row.ProgramSize),
                   std::to_string(Row.ProductStates),
                   std::to_string(Row.SleepOnlyStates),
                   std::to_string(Row.CombinedStates)},
                  {8, 8, 9, 11, 9});
    if (Row.CombinedStates > 2 * Row.ProgramSize)
      Linear = false;
  }
  std::printf("\nThm. 7.2 check (combined states <= 2 * size(P)): %s\n",
              Linear ? "HOLDS" : "VIOLATED");

  std::printf("\n== Microbenchmarks: construction time ==\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
