//===- bench/bench_fig6_quantiles.cpp - Fig. 6 ----------------------------===//
///
/// Regenerates Figure 6: quantile plots of CPU time and memory over the
/// successfully analysed programs, Automizer vs GemCutter. A point (x, y)
/// means the x-th fastest successfully analysed instance took y seconds
/// (resp. the x-th smallest peak-state count was y states). Printed as two
/// aligned series suitable for plotting.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "support/StringUtils.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

using namespace seqver;
using namespace seqver::bench;

namespace {

std::vector<workloads::WorkloadInstance> fullSuite() {
  auto Suite = workloads::svcompLikeSuite();
  auto Weaver = workloads::weaverLikeSuite();
  Suite.insert(Suite.end(), Weaver.begin(), Weaver.end());
  return Suite;
}

void printQuantiles(const char *Title, std::vector<double> A,
                    std::vector<double> G, const char *Unit) {
  std::sort(A.begin(), A.end());
  std::sort(G.begin(), G.end());
  std::printf("\n-- %s (%s; per successfully analysed instance, sorted) "
              "--\n",
              Title, Unit);
  printTableHeader({"n-th", "Automizer", "GemCutter"}, {6, 12, 12});
  size_t N = std::max(A.size(), G.size());
  for (size_t I = 0; I < N; ++I) {
    printTableRow({std::to_string(I + 1),
                   I < A.size() ? formatDouble(A[I], 4) : "-",
                   I < G.size() ? formatDouble(G[I], 4) : "-"},
                  {6, 12, 12});
  }
}

} // namespace

namespace {

/// Microbenchmark: one portfolio verification of a representative instance.
void BM_PortfolioMutexSafe3(benchmark::State &State) {
  workloads::WorkloadInstance W;
  for (const auto &Inst : workloads::svcompLikeSuite())
    if (Inst.Name == "mutex_safe_3")
      W = Inst;
  for (auto _ : State) {
    RunRecord R = runTool(W, "gemcutter");
    benchmark::DoNotOptimize(R.Rounds);
  }
}
BENCHMARK(BM_PortfolioMutexSafe3)->Unit(benchmark::kMillisecond);

} // namespace


int main(int argc, char **argv) {
  std::printf("== Figure 6: quantile plots of CPU time and memory ==\n");
  auto Suite = fullSuite();
  auto Automizer = runSuite(Suite, "automizer");
  auto GemCutter = runSuite(Suite, "gemcutter");

  std::vector<double> TimeA, TimeG, MemA, MemG;
  for (const RunRecord &R : Automizer)
    if (R.successful()) {
      TimeA.push_back(R.Seconds);
      MemA.push_back(static_cast<double>(R.PeakVisited));
    }
  for (const RunRecord &R : GemCutter)
    if (R.successful()) {
      TimeG.push_back(R.Seconds);
      MemG.push_back(static_cast<double>(R.PeakVisited));
    }

  printQuantiles("CPU time", TimeA, TimeG, "seconds");
  printQuantiles("Memory proxy", MemA, MemG, "peak DFS states");

  double SumA = 0, SumG = 0;
  for (double T : TimeA)
    SumA += T;
  for (double T : TimeG)
    SumG += T;
  std::printf("\nsolved: Automizer=%zu GemCutter=%zu; total time: "
              "Automizer=%.2fs GemCutter=%.2fs\n",
              TimeA.size(), TimeG.size(), SumA, SumG);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
