//===- bench/bench_ext_predicate_sources.cpp - wp vs interpolation ---------===//
///
/// Extension experiment: the paper's implementation obtains trace proofs
/// from an interpolant-generating SMT solver (Sec. 7.2); this reproduction
/// defaults to weakest-precondition chains and additionally implements
/// Farkas sequence interpolation (core/Interpolation.h). This bench
/// compares the two predicate sources (and their union) on both suites:
/// solved instances, refinement rounds, raw and minimized proof sizes, and
/// how often the interpolation engine succeeded vs fell back to wp.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "program/CfgBuilder.h"
#include "support/StringUtils.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace seqver;
using namespace seqver::bench;

namespace {

struct SourceAgg {
  int Solved = 0;
  int64_t Rounds = 0;
  double ProofTotal = 0;
  double MinimizedTotal = 0;
  int ProofCount = 0;
  int64_t Interpolated = 0;
  int64_t Fallbacks = 0;
};

SourceAgg
runWithSource(const std::vector<workloads::WorkloadInstance> &Suite,
              core::PredicateSource Source) {
  SourceAgg Out;
  for (const workloads::WorkloadInstance &W : Suite) {
    smt::TermManager TM;
    prog::BuildResult B = prog::buildFromSource(W.Source, TM);
    if (!B.ok())
      continue;
    core::VerifierConfig Config;
    Config.TimeoutSeconds = benchTimeout();
    Config.Source = Source;
    Config.MinimizeProof = true;
    core::VerificationResult R =
        core::runSingleOrder(*B.Program, Config, "seq");
    bool Successful =
        (R.V == core::Verdict::Correct) == W.ExpectedCorrect &&
        (R.V == core::Verdict::Correct || R.V == core::Verdict::Incorrect);
    Out.Interpolated += R.Stats.get("interpolated_traces");
    Out.Fallbacks += R.Stats.get("interpolation_fallbacks");
    if (!Successful)
      continue;
    ++Out.Solved;
    Out.Rounds += R.Rounds;
    if (R.V == core::Verdict::Correct) {
      Out.ProofTotal += static_cast<double>(R.ProofSize);
      Out.MinimizedTotal += static_cast<double>(R.MinimizedProofSize);
      ++Out.ProofCount;
    }
  }
  return Out;
}

void BM_InterpolateBluetoothTrace(benchmark::State &State) {
  smt::TermManager TM;
  prog::BuildResult B =
      prog::buildFromSource(workloads::bluetoothSource(2), TM);
  for (auto _ : State) {
    core::VerifierConfig Config;
    Config.TimeoutSeconds = 30;
    Config.Source = core::PredicateSource::Interpolation;
    auto R = core::runSingleOrder(*B.Program, Config, "seq");
    benchmark::DoNotOptimize(R.Rounds);
  }
}
BENCHMARK(BM_InterpolateBluetoothTrace)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  std::printf("== Extension: predicate sources (wp chains vs Farkas "
              "sequence interpolants) ==\n\n");
  const std::vector<std::pair<std::string, core::PredicateSource>> Sources =
      {{"wp", core::PredicateSource::WpChain},
       {"interp", core::PredicateSource::Interpolation},
       {"both", core::PredicateSource::Both}};
  const std::vector<std::pair<std::string,
                              std::vector<workloads::WorkloadInstance>>>
      Suites = {{"SV-COMP-like", workloads::svcompLikeSuite()},
                {"Weaver-like", workloads::weaverLikeSuite()}};

  printTableHeader({"suite", "source", "solved", "rounds", "avg proof",
                    "avg minimized", "interp/fallback"},
                   {14, 8, 7, 7, 10, 14, 16});
  for (const auto &[SuiteName, Suite] : Suites) {
    for (const auto &[SourceName, Source] : Sources) {
      SourceAgg A = runWithSource(Suite, Source);
      printTableRow(
          {SuiteName, SourceName, std::to_string(A.Solved),
           std::to_string(A.Rounds),
           formatDouble(A.ProofCount ? A.ProofTotal / A.ProofCount : 0, 1),
           formatDouble(
               A.ProofCount ? A.MinimizedTotal / A.ProofCount : 0, 1),
           std::to_string(A.Interpolated) + "/" +
               std::to_string(A.Fallbacks)},
          {14, 8, 7, 7, 10, 14, 16});
    }
  }
  std::printf("\n(interp/fallback counts traces refined via Farkas "
              "interpolants vs wp fallback.)\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
