//===- bench/bench_fusion.cpp - Transaction fusion ablation ---------------===//
///
/// \file
/// Measures what Lipton transaction fusion (analysis/Fusion.h) buys on the
/// tier-1 suites: for every workload, the deterministic "seq" order runs
/// once on the pruned program and once on the pruned-then-fused program,
/// and the explored DFS state counts (visited_total) are compared. Fusion
/// collapses maximal right-mover*·commit·left-mover* chains into single
/// transaction edges, so the fused arm must never explore more states, and
/// on the loop-heavy and affine suites — whose bodies are long both-mover
/// chains under the invariant registry — the reduction must be strict.
/// The per-suite counters land in BENCH_fusion.json via --benchmark_out,
/// which tools/check_perf.sh tracks as a perf-gate baseline.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "analysis/Analysis.h"
#include "analysis/Fusion.h"
#include "program/CfgBuilder.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

using namespace seqver;
using namespace seqver::bench;

namespace {

struct SuiteFusion {
  std::string Suite;
  int64_t VisitedUnfused = 0;
  int64_t VisitedFused = 0;
  int64_t FusedEdges = 0;
  int64_t Transactions = 0;
  int Mismatches = 0;

  double reductionPct() const {
    return VisitedUnfused == 0
               ? 0.0
               : 100.0 *
                     static_cast<double>(VisitedUnfused - VisitedFused) /
                     static_cast<double>(VisitedUnfused);
  }
};

/// Both sequential arms for one workload, accumulated into Out.
void runArms(const workloads::WorkloadInstance &W, SuiteFusion &Out) {
  core::VerifierConfig Config;
  Config.TimeoutSeconds = benchTimeout();

  smt::TermManager PlainTM;
  prog::BuildResult Plain = prog::buildFromSource(W.Source, PlainTM);
  if (!Plain.ok())
    return;
  analysis::pruneDeadEdges(*Plain.Program);
  core::VerificationResult Unfused =
      core::runSingleOrder(*Plain.Program, Config, "seq");

  smt::TermManager FusedTM;
  prog::BuildResult Fused = prog::buildFromSource(W.Source, FusedTM);
  if (!Fused.ok())
    return;
  analysis::pruneDeadEdges(*Fused.Program);
  analysis::FusionStats FS = analysis::fuseTransactions(*Fused.Program);
  core::VerificationResult FusedRun =
      core::runSingleOrder(*Fused.Program, Config, "seq");

  if (Unfused.V != FusedRun.V)
    ++Out.Mismatches;
  Out.VisitedUnfused += Unfused.Stats.get("visited_total");
  Out.VisitedFused += FusedRun.Stats.get("visited_total");
  Out.FusedEdges += static_cast<int64_t>(FS.FusedEdges);
  Out.Transactions += static_cast<int64_t>(FS.Transactions);
}

SuiteFusion runFusionSuite(const std::string &Name,
                           const std::vector<workloads::WorkloadInstance> &S) {
  SuiteFusion Out;
  Out.Suite = Name;
  for (const auto &W : S)
    runArms(W, Out);
  return Out;
}

std::vector<SuiteFusion> runAllSuites() {
  return {
      runFusionSuite("svcomp", workloads::svcompLikeSuite()),
      runFusionSuite("weaver", workloads::weaverLikeSuite()),
      runFusionSuite("loop_heavy", workloads::loopHeavySuite()),
      runFusionSuite("affine", workloads::affineSuite()),
  };
}

/// Suite-level fused-vs-unfused DFS state counts; the counters land in the
/// --benchmark_out JSON so BENCH_fusion.json tracks the reduction over
/// time. loop_heavy and affine must show a strict reduction (the
/// --check-fusion acceptance gate re-checks verdict agreement).
void BM_TransactionFusion(benchmark::State &State) {
  std::vector<SuiteFusion> Suites;
  for (auto _ : State) {
    Suites = runAllSuites();
    benchmark::DoNotOptimize(Suites.size());
  }
  int64_t Unfused = 0, Fused = 0, Edges = 0, Txns = 0, Mismatches = 0;
  for (const SuiteFusion &S : Suites) {
    State.counters["visited_unfused_" + S.Suite] =
        static_cast<double>(S.VisitedUnfused);
    State.counters["visited_fused_" + S.Suite] =
        static_cast<double>(S.VisitedFused);
    Unfused += S.VisitedUnfused;
    Fused += S.VisitedFused;
    Edges += S.FusedEdges;
    Txns += S.Transactions;
    Mismatches += S.Mismatches;
  }
  State.counters["visited_unfused_total"] = static_cast<double>(Unfused);
  State.counters["visited_fused_total"] = static_cast<double>(Fused);
  State.counters["fusion_fused_edges"] = static_cast<double>(Edges);
  State.counters["fusion_transactions"] = static_cast<double>(Txns);
  State.counters["verdict_mismatches"] = static_cast<double>(Mismatches);
}
BENCHMARK(BM_TransactionFusion)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

} // namespace

int main(int argc, char **argv) {
  std::printf("== Transaction fusion: DFS states fused vs unfused ==\n");
  std::printf("(per-instance timeout %.0fs, seq order, pruned programs)\n\n",
              benchTimeout());

  std::vector<SuiteFusion> Suites = runAllSuites();
  printTableHeader(
      {"suite", "vis-unfused", "vis-fused", "fewer%", "edges", "txn", "mism"},
      {12, 12, 12, 7, 6, 5, 5});
  int64_t Unfused = 0, Fused = 0;
  for (const SuiteFusion &S : Suites) {
    char Pct[16];
    std::snprintf(Pct, sizeof(Pct), "%.1f", S.reductionPct());
    printTableRow({S.Suite, std::to_string(S.VisitedUnfused),
                   std::to_string(S.VisitedFused), Pct,
                   std::to_string(S.FusedEdges),
                   std::to_string(S.Transactions),
                   std::to_string(S.Mismatches)},
                  {12, 12, 12, 7, 6, 5, 5});
    Unfused += S.VisitedUnfused;
    Fused += S.VisitedFused;
  }
  if (Unfused > 0)
    std::printf("\ntotal: %lld -> %lld DFS states (%.1f%% fewer)\n",
                static_cast<long long>(Unfused),
                static_cast<long long>(Fused),
                100.0 * static_cast<double>(Unfused - Fused) /
                    static_cast<double>(Unfused));

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
