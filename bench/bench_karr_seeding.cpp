//===- bench/bench_karr_seeding.cpp - Karr tier + seeding ablation ---------===//
///
/// Measures what the affine-equality engine buys on counting-proof
/// workloads whose invariants carry non-unit coefficients (total == 2*i,
/// j == 2*i): GemCutter with the Karr commutativity tier plus octagon+Karr
/// proof seeding (`gemcutter-karr`) against the same stack with the Karr
/// tier and its seeding contribution off (`gemcutter-nokarr`), and against
/// the interval-only, unseeded baseline (`gemcutter-nooct`). Expected shape
/// on the affine suite: strictly fewer refinement rounds or SMT
/// commutativity queries with Karr on — octagons cannot express the needed
/// equalities, so the nokarr arm must rediscover them predicate by
/// predicate.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "support/StringUtils.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace seqver;
using namespace seqver::bench;

namespace {

std::vector<workloads::WorkloadInstance> affineHeavySuite() {
  std::vector<workloads::WorkloadInstance> Suite = workloads::affineSuite();
  // The unit-coefficient loop workloads keep the comparison honest on
  // programs where the octagon tier already captures the invariant and
  // Karr is *not* expected to add much.
  for (const auto &W : workloads::loopHeavySuite())
    if (Suite.size() < 10)
      Suite.push_back(W);
  return Suite;
}

void printComparison(const std::vector<RunRecord> &Karr,
                     const std::vector<RunRecord> &NoKarr,
                     const std::vector<RunRecord> &Base) {
  printTableHeader({"instance", "karr", "no-karr", "rd-k", "rd-nk", "rd-b",
                    "sem-k", "sem-nk", "karr-tier", "k-seeds"},
                   {20, 9, 9, 5, 5, 5, 7, 7, 9, 7});
  for (size_t I = 0;
       I < Karr.size() && I < NoKarr.size() && I < Base.size(); ++I) {
    const RunRecord &A = Karr[I];
    const RunRecord &B = NoKarr[I];
    const RunRecord &C = Base[I];
    printTableRow({A.Instance, core::verdictName(A.V),
                   core::verdictName(B.V), std::to_string(A.Rounds),
                   std::to_string(B.Rounds), std::to_string(C.Rounds),
                   std::to_string(A.SemanticChecks),
                   std::to_string(B.SemanticChecks),
                   std::to_string(A.CommutKarr),
                   std::to_string(A.KarrSeeded)},
                  {20, 9, 9, 5, 5, 5, 7, 7, 9, 7});
  }
}

/// Suite-level ablation; counters land in the --benchmark_out JSON so
/// BENCH_*.json tracks the affine rounds and SMT-query savings over time.
void BM_AffineKarrSeeding(benchmark::State &State) {
  auto Suite = affineHeavySuite();
  SuiteAggregate Karr, NoKarr, Base;
  for (auto _ : State) {
    auto KarrRecords = runSuite(Suite, "gemcutter-karr");
    auto NoKarrRecords = runSuite(Suite, "gemcutter-nokarr");
    auto BaseRecords = runSuite(Suite, "gemcutter-nooct");
    benchmark::DoNotOptimize(KarrRecords.size());
    Karr = aggregate(KarrRecords);
    NoKarr = aggregate(NoKarrRecords);
    Base = aggregate(BaseRecords);
  }
  State.counters["rounds_karr"] = static_cast<double>(Karr.TotalRounds);
  State.counters["rounds_nokarr"] = static_cast<double>(NoKarr.TotalRounds);
  State.counters["rounds_baseline"] = static_cast<double>(Base.TotalRounds);
  State.counters["rounds_saved"] =
      static_cast<double>(Base.TotalRounds - Karr.TotalRounds);
  State.counters["semantic_checks_karr"] =
      static_cast<double>(Karr.TotalSemanticChecks);
  State.counters["semantic_checks_nokarr"] =
      static_cast<double>(NoKarr.TotalSemanticChecks);
  State.counters["smt_queries_saved"] =
      static_cast<double>(NoKarr.TotalSmtQueries - Karr.TotalSmtQueries);
  State.counters["commut_karr"] = static_cast<double>(Karr.TotalCommutKarr);
  State.counters["karr_seeded"] = static_cast<double>(Karr.TotalKarrSeeded);
}
BENCHMARK(BM_AffineKarrSeeding)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

} // namespace

int main(int argc, char **argv) {
  std::printf("== Ablation: Karr affine tier + proof seeding ==\n");
  std::printf("(per-instance timeout %.0fs)\n\n", benchTimeout());

  auto Suite = affineHeavySuite();
  auto Karr = runSuite(Suite, "gemcutter-karr");
  auto NoKarr = runSuite(Suite, "gemcutter-nokarr");
  auto Base = runSuite(Suite, "gemcutter-nooct");
  printComparison(Karr, NoKarr, Base);

  SuiteAggregate A = aggregate(Karr);
  SuiteAggregate B = aggregate(NoKarr);
  SuiteAggregate C = aggregate(Base);
  std::printf("\nsolved: %d with karr, %d without karr, %d interval-only\n",
              A.Successful, B.Successful, C.Successful);
  std::printf("refinement rounds: %lld karr vs %lld nokarr vs %lld "
              "interval-only\n",
              static_cast<long long>(A.TotalRounds),
              static_cast<long long>(B.TotalRounds),
              static_cast<long long>(C.TotalRounds));
  std::printf("semantic commutativity checks: %lld vs %lld vs %lld\n",
              static_cast<long long>(A.TotalSemanticChecks),
              static_cast<long long>(B.TotalSemanticChecks),
              static_cast<long long>(C.TotalSemanticChecks));
  std::printf("smt queries: %lld vs %lld vs %lld\n",
              static_cast<long long>(A.TotalSmtQueries),
              static_cast<long long>(B.TotalSmtQueries),
              static_cast<long long>(C.TotalSmtQueries));
  std::printf("karr-settled queries: %lld, karr-seeded predicates: %lld "
              "(of %lld total seeds)\n",
              static_cast<long long>(A.TotalCommutKarr),
              static_cast<long long>(A.TotalKarrSeeded),
              static_cast<long long>(A.TotalSeededPredicates));

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
