//===- bench/bench_proof_cache.cpp - Warm-start ablation ------------------===//
///
/// Measures what the persistent proof cache (docs/PERSIST.md) buys on
/// re-verification. Four arms over the loop-heavy + affine suites, all
/// single-order `seq` runs against one on-disk store:
///
///   cold          empty store; every instance misses, decisive runs
///                 write back (the first CI run / first local build)
///   warm          identical sources; every instance hits and seeds its
///                 own previous proof (the unchanged-rerun case) — the
///                 headline rounds_saved number
///   warm-renamed  alpha-renamed sources (variables and thread names);
///                 the structural fingerprint still hits, but cached
///                 predicates are name-based, so seeds mentioning renamed
///                 variables land in the cache! namespace and the Hoare
///                 gate drops them — hits stay at 100% while the savings
///                 only survive on instances whose names did
///   edited        semantically edited sources (one extra global); the
///                 fingerprint changes, so every instance must miss and
///                 pay the cold cost (invalidation works)
///
/// Expected shape: warm rounds strictly below cold rounds in aggregate
/// (the acceptance bar for the subsystem), renamed between warm and cold
/// with full hits, edited equal to cold in rounds and hits == 0.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "persist/ProofCache.h"
#include "program/CfgBuilder.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

using namespace seqver;
using namespace seqver::bench;

namespace {

/// Scratch store shared by all arms of one comparison; recreated empty.
std::string scratchCacheDir() {
  std::string Dir = (std::filesystem::temp_directory_path() /
                     ("seqver_bench_cache_" + std::to_string(::getpid())))
                        .string();
  std::error_code EC;
  std::filesystem::remove_all(Dir, EC);
  std::filesystem::create_directories(Dir);
  return Dir;
}

std::vector<workloads::WorkloadInstance> cacheSuite() {
  std::vector<workloads::WorkloadInstance> Suite =
      workloads::loopHeavySuite();
  for (const auto &W : workloads::affineSuite())
    Suite.push_back(W);
  return Suite;
}

/// Alpha-renamed twins: same shape as loopSumSource/affineSumSource with
/// every identifier renamed — the fingerprint must not notice. Instances
/// whose generator we do not mirror keep their original source (they
/// still hit, trivially; the renamed loop/affine entries are the ones
/// exercising the name-invariance).
std::string renamedCounterSource(int N, int Bound, int Step) {
  std::string Out = "var int k := 0;\nvar int acc := 0;\n";
  Out += "thread grinder {\n"
         "  while (k < " + std::to_string(N) + ") {\n"
         "    acc := acc + " + std::to_string(Step) + ";\n"
         "    k := k + 1;\n"
         "  }\n"
         "}\n";
  Out += "thread observer { assert acc <= " + std::to_string(Bound) +
         "; }\n";
  return Out;
}

std::vector<workloads::WorkloadInstance> renamedSuite() {
  std::vector<workloads::WorkloadInstance> Suite = cacheSuite();
  for (auto &W : Suite) {
    if (W.Name == "loop_sum_safe_5")
      W.Source = renamedCounterSource(5, 5, 1);
    else if (W.Name == "loop_sum_bug_5")
      W.Source = renamedCounterSource(5, 4, 1);
    else if (W.Name == "loop_sum_safe_6")
      W.Source = renamedCounterSource(6, 6, 1);
    else if (W.Name == "loop_sum_bug_6")
      W.Source = renamedCounterSource(6, 5, 1);
    else if (W.Name == "affine_sum_safe_5")
      W.Source = renamedCounterSource(5, 10, 2);
    else if (W.Name == "affine_sum_bug_5")
      W.Source = renamedCounterSource(5, 9, 2);
  }
  return Suite;
}

/// Semantically edited twins: one extra (unused) global flips the
/// fingerprint of every instance, so the whole arm must run cold.
std::vector<workloads::WorkloadInstance> editedSuite() {
  std::vector<workloads::WorkloadInstance> Suite = cacheSuite();
  for (auto &W : Suite)
    W.Source = "var int shadow := 0;\n" + W.Source;
  return Suite;
}

/// Single-order seq run against the shared store (runTool has no cache
/// knob on purpose — the harness tools stay cold by default).
RunRecord runCached(const workloads::WorkloadInstance &W,
                    const std::string &Tool, const std::string &CacheDir) {
  smt::TermManager TM;
  prog::BuildResult B = prog::buildFromSource(W.Source, TM);
  RunRecord Out;
  Out.Instance = W.Name;
  Out.Family = W.Family;
  Out.ExpectedCorrect = W.ExpectedCorrect;
  Out.Tool = Tool;
  if (!B.ok()) {
    std::fprintf(stderr, "build error in %s: %s\n", W.Name.c_str(),
                 B.Error.c_str());
    return Out;
  }
  core::VerifierConfig Config;
  Config.TimeoutSeconds = benchTimeout();
  Config.CacheDir = CacheDir;
  core::VerificationResult R =
      core::runSingleOrder(*B.Program, Config, "seq");
  Out.V = R.V;
  Out.Seconds = R.Seconds;
  Out.Rounds = R.Rounds;
  Out.ProofSize = R.ProofSize;
  Out.SmtQueries = R.Stats.get("smt_queries");
  Out.SeededPredicates = R.Stats.get("seeded_predicates");
  Out.CacheHits = R.Stats.get("cache_hits");
  Out.CacheMisses = R.Stats.get("cache_misses");
  Out.CacheSeeded = R.Stats.get("cache_seeded");
  Out.RoundsSavedWarm = R.Stats.get("rounds_saved_warm");
  Out.CacheStores = R.Stats.get("cache_stores");
  return Out;
}

std::vector<RunRecord>
runArm(const std::vector<workloads::WorkloadInstance> &Suite,
       const std::string &Tool, const std::string &CacheDir) {
  std::vector<RunRecord> Out;
  Out.reserve(Suite.size());
  for (const auto &W : Suite)
    Out.push_back(runCached(W, Tool, CacheDir));
  return Out;
}

void printComparison(const std::vector<RunRecord> &Cold,
                     const std::vector<RunRecord> &Warm,
                     const std::vector<RunRecord> &Renamed,
                     const std::vector<RunRecord> &Edited) {
  printTableHeader({"instance", "verdict", "rd-cold", "rd-warm", "rd-ren",
                    "rd-edit", "hit-w", "seeds-w"},
                   {20, 10, 7, 7, 7, 7, 5, 7});
  for (size_t I = 0; I < Cold.size(); ++I)
    printTableRow({Cold[I].Instance, core::verdictName(Warm[I].V),
                   std::to_string(Cold[I].Rounds),
                   std::to_string(Warm[I].Rounds),
                   std::to_string(Renamed[I].Rounds),
                   std::to_string(Edited[I].Rounds),
                   std::to_string(Warm[I].CacheHits),
                   std::to_string(Warm[I].CacheSeeded)},
                  {20, 10, 7, 7, 7, 7, 5, 7});
}

/// Counters land in --benchmark_out JSON; BENCH_proof_cache.json is the
/// checked-in baseline EXPERIMENTS.md points at.
void BM_ProofCacheWarmStart(benchmark::State &State) {
  std::string Dir = scratchCacheDir();
  SuiteAggregate Cold, Warm, Renamed, Edited;
  int StrictlyFewer = 0;
  for (auto _ : State) {
    std::error_code EC;
    std::filesystem::remove_all(Dir, EC);
    std::filesystem::create_directories(Dir);
    auto ColdR = runArm(cacheSuite(), "seq-cold", Dir);
    auto WarmR = runArm(cacheSuite(), "seq-warm", Dir);
    auto RenamedR = runArm(renamedSuite(), "seq-renamed", Dir);
    auto EditedR = runArm(editedSuite(), "seq-edited", Dir);
    benchmark::DoNotOptimize(ColdR.size());
    Cold = aggregate(ColdR);
    Warm = aggregate(WarmR);
    Renamed = aggregate(RenamedR);
    Edited = aggregate(EditedR);
    StrictlyFewer = 0;
    for (size_t I = 0; I < ColdR.size(); ++I)
      if (WarmR[I].V == core::Verdict::Correct &&
          WarmR[I].Rounds < ColdR[I].Rounds)
        ++StrictlyFewer;
  }
  std::error_code EC;
  std::filesystem::remove_all(Dir, EC);
  State.counters["rounds_cold"] = static_cast<double>(Cold.TotalRounds);
  State.counters["rounds_warm"] = static_cast<double>(Warm.TotalRounds);
  State.counters["rounds_saved"] =
      static_cast<double>(Cold.TotalRounds - Warm.TotalRounds);
  State.counters["strictly_fewer_rounds_warm"] =
      static_cast<double>(StrictlyFewer);
  State.counters["cache_hits"] = static_cast<double>(Warm.TotalCacheHits);
  State.counters["cache_misses"] =
      static_cast<double>(Warm.TotalCacheMisses);
  State.counters["cache_seeded"] =
      static_cast<double>(Warm.TotalCacheSeeded);
  State.counters["rounds_saved_warm"] =
      static_cast<double>(Warm.TotalRoundsSavedWarm);
  State.counters["cache_stores_cold"] =
      static_cast<double>(Cold.TotalCacheStores);
  State.counters["smt_queries_cold"] =
      static_cast<double>(Cold.TotalSmtQueries);
  State.counters["smt_queries_warm"] =
      static_cast<double>(Warm.TotalSmtQueries);
  State.counters["rounds_renamed"] =
      static_cast<double>(Renamed.TotalRounds);
  State.counters["cache_hits_renamed"] =
      static_cast<double>(Renamed.TotalCacheHits);
  State.counters["rounds_edited"] = static_cast<double>(Edited.TotalRounds);
  State.counters["cache_hits_edited"] =
      static_cast<double>(Edited.TotalCacheHits);
  State.counters["cache_misses_edited"] =
      static_cast<double>(Edited.TotalCacheMisses);
}
BENCHMARK(BM_ProofCacheWarmStart)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

} // namespace

int main(int argc, char **argv) {
  std::printf("== Persistent proof cache: cold / warm / renamed / edited "
              "==\n");
  std::printf("(per-instance timeout %.0fs, single order seq)\n\n",
              benchTimeout());

  std::string Dir = scratchCacheDir();
  auto Cold = runArm(cacheSuite(), "seq-cold", Dir);
  auto Warm = runArm(cacheSuite(), "seq-warm", Dir);
  auto Renamed = runArm(renamedSuite(), "seq-renamed", Dir);
  auto Edited = runArm(editedSuite(), "seq-edited", Dir);
  printComparison(Cold, Warm, Renamed, Edited);

  SuiteAggregate A = aggregate(Cold), B = aggregate(Warm),
                 C = aggregate(Renamed), D = aggregate(Edited);
  std::printf("\nrefinement rounds: %lld cold vs %lld warm vs %lld renamed "
              "vs %lld edited\n",
              static_cast<long long>(A.TotalRounds),
              static_cast<long long>(B.TotalRounds),
              static_cast<long long>(C.TotalRounds),
              static_cast<long long>(D.TotalRounds));
  std::printf("warm traffic: %lld hit(s), %lld seeded predicate(s), %lld "
              "round(s) saved\n",
              static_cast<long long>(B.TotalCacheHits),
              static_cast<long long>(B.TotalCacheSeeded),
              static_cast<long long>(B.TotalRoundsSavedWarm));
  std::printf("edited traffic: %lld hit(s), %lld miss(es) — every edit "
              "invalidates\n",
              static_cast<long long>(D.TotalCacheHits),
              static_cast<long long>(D.TotalCacheMisses));
  std::error_code EC;
  std::filesystem::remove_all(Dir, EC);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
