//===- bench/bench_table2_variants.cpp - Table 2 ---------------------------===//
///
/// Regenerates Table 2: proof size for successfully verified correct
/// programs and time per refinement round for all successfully analysed
/// programs, for Automizer vs GemCutter variations: full portfolio,
/// sleep-set-only reduction, persistent-set-only reduction, and the
/// lockstep-order-only configuration.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "support/StringUtils.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

using namespace seqver;
using namespace seqver::bench;

namespace {

struct VariantStats {
  double ProofSizeTotal = 0;
  int ProofCount = 0;
  double TimeTotal = 0;
  int64_t RoundsTotal = 0;

  double avgProof() const {
    return ProofCount == 0 ? 0 : ProofSizeTotal / ProofCount;
  }
  double timePerRound() const {
    return RoundsTotal == 0 ? 0 : TimeTotal / static_cast<double>(RoundsTotal);
  }
};

void accumulate(const std::vector<RunRecord> &Records, VariantStats &Stats) {
  for (const RunRecord &R : Records) {
    if (!R.successful())
      continue;
    if (R.ExpectedCorrect && R.V == core::Verdict::Correct) {
      Stats.ProofSizeTotal += static_cast<double>(R.ProofSize);
      ++Stats.ProofCount;
    }
    Stats.TimeTotal += R.Seconds;
    Stats.RoundsTotal += R.Rounds;
  }
}

} // namespace

namespace {

/// Microbenchmark: one portfolio verification of a representative instance.
void BM_PortfolioMutexSafe3(benchmark::State &State) {
  workloads::WorkloadInstance W;
  for (const auto &Inst : workloads::svcompLikeSuite())
    if (Inst.Name == "mutex_safe_3")
      W = Inst;
  for (auto _ : State) {
    RunRecord R = runTool(W, "gemcutter");
    benchmark::DoNotOptimize(R.Rounds);
  }
}
BENCHMARK(BM_PortfolioMutexSafe3)->Unit(benchmark::kMillisecond);

} // namespace


int main(int argc, char **argv) {
  std::printf("== Table 2: proof size and proof-check efficiency for "
              "Automizer vs GemCutter variants ==\n\n");

  const std::vector<std::pair<std::string, std::string>> Variants = {
      {"Automizer", "automizer"}, {"Portfolio", "gemcutter"},
      {"sleep", "sleep"},         {"persistent", "persistent"},
      {"lockstep", "lockstep"},
  };
  const std::vector<std::pair<std::string,
                              std::vector<workloads::WorkloadInstance>>>
      Suites = {{"SV-COMP", workloads::svcompLikeSuite()},
                {"Weaver", workloads::weaverLikeSuite()}};

  // variant -> suite -> stats
  std::map<std::string, std::map<std::string, VariantStats>> Stats;
  for (const auto &[Label, Tool] : Variants)
    for (const auto &[SuiteName, Suite] : Suites)
      accumulate(runSuite(Suite, Tool), Stats[Label][SuiteName]);

  std::vector<int> Widths = {12, 10, 10, 10, 11, 10};
  std::printf("-- Average proof size for successfully verified correct "
              "programs --\n");
  printTableHeader({"", "Automizer", "Portfolio", "sleep", "persistent",
                    "lockstep"},
                   Widths);
  for (const char *Row : {"total", "SV-COMP", "Weaver"}) {
    std::vector<std::string> Cells = {Row};
    for (const auto &[Label, Tool] : Variants) {
      (void)Tool;
      VariantStats Combined;
      if (std::string(Row) == "total") {
        for (const auto &[SuiteName, S] : Stats[Label]) {
          (void)SuiteName;
          Combined.ProofSizeTotal += S.ProofSizeTotal;
          Combined.ProofCount += S.ProofCount;
        }
      } else {
        Combined = Stats[Label][Row];
      }
      Cells.push_back(formatDouble(Combined.avgProof(), 1));
    }
    printTableRow(Cells, Widths);
  }

  std::printf("\n-- Time per refinement round (in s) for successfully "
              "analysed programs --\n");
  printTableHeader({"", "Automizer", "Portfolio", "sleep", "persistent",
                    "lockstep"},
                   Widths);
  for (const char *Row : {"total", "SV-COMP", "Weaver"}) {
    std::vector<std::string> Cells = {Row};
    for (const auto &[Label, Tool] : Variants) {
      (void)Tool;
      VariantStats Combined;
      if (std::string(Row) == "total") {
        for (const auto &[SuiteName, S] : Stats[Label]) {
          (void)SuiteName;
          Combined.TimeTotal += S.TimeTotal;
          Combined.RoundsTotal += S.RoundsTotal;
        }
      } else {
        Combined = Stats[Label][Row];
      }
      Cells.push_back(formatDouble(Combined.timePerRound(), 4));
    }
    printTableRow(Cells, Widths);
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
