//===- bench/bench_commut_oracle.cpp - Shared commutativity oracle --------===//
///
/// Measures what the shared commutativity oracle (reduction/CommutOracle.h)
/// saves on the parallel portfolio: every workload is raced under four
/// arms — private per-checker caches (the pre-oracle behaviour), one
/// shared in-memory table, persisted-cold (a fresh table bound to an empty
/// disk store, flushed after the race), and persisted-warm (a fresh table
/// that reloads the flushed answers). The headline numbers are the
/// hub-merged `commut_semantic` counts: semantic-tier queries that
/// actually reached the solver, summed over every racing order.
///
/// Suites: all four tier-1 suites minus the bluetooth family. The
/// bluetooth workloads are refinement-bound — their semantic queries
/// carry per-order proof predicates (distinct Phi per racing order) that
/// no sharing scheme can deduplicate — and they dwarf the
/// commutativity-bound rest by an order of magnitude, so including them
/// would only measure noise on top of bench_table1_overview's ground.
///
/// Writes a flat BENCH_commut_oracle.json (path in argv[1], default
/// BENCH_commut_oracle.json in the working directory) that
/// tools/check_perf.sh diffs against the checked-in baseline at the repo
/// root; losing the shared or persisted-warm savings fails the gate.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "persist/Fingerprint.h"
#include "program/CfgBuilder.h"
#include "reduction/CommutOracle.h"
#include "runtime/ParallelPortfolio.h"
#include "support/Timer.h"

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

using namespace seqver;
using namespace seqver::bench;

namespace {

/// Aggregate of one arm over the whole suite.
struct ArmTotals {
  int Successful = 0;
  int64_t Semantic = 0;    ///< hub-merged commut_semantic
  int64_t SharedHits = 0;  ///< hub-merged commut_shared_hits
  int64_t SmtQueries = 0;  ///< hub-merged smt_queries
  double WallSeconds = 0;  ///< summed race wall-clock
};

void accumulate(ArmTotals &T, const workloads::WorkloadInstance &W,
                const runtime::ParallelPortfolioResult &R) {
  if (core::isDecisive(R.Best.V) &&
      (R.Best.V == core::Verdict::Correct) == W.ExpectedCorrect)
    ++T.Successful;
  T.Semantic += R.Merged.get("commut_semantic");
  T.SharedHits += R.Merged.get("commut_shared_hits");
  T.SmtQueries += R.Merged.get("smt_queries");
  T.WallSeconds += R.WallSeconds;
}

double dropPct(int64_t Before, int64_t After) {
  return Before <= 0 ? 0.0
                     : 100.0 * static_cast<double>(Before - After) /
                           static_cast<double>(Before);
}

struct JsonWriter {
  std::FILE *F;
  bool First = true;

  void field(const char *Name, double Value) {
    std::fprintf(F, "%s  \"%s\": %.6g", First ? "" : ",\n", Name, Value);
    First = false;
  }
  void field(const char *Name, int64_t Value) {
    std::fprintf(F, "%s  \"%s\": %lld", First ? "" : ",\n", Name,
                 static_cast<long long>(Value));
    First = false;
  }
};

} // namespace

int main(int argc, char **argv) {
  std::string OutPath = argc > 1 ? argv[1] : "BENCH_commut_oracle.json";

  std::vector<workloads::WorkloadInstance> All =
      workloads::svcompLikeSuite();
  std::vector<workloads::WorkloadInstance> Weaver =
      workloads::weaverLikeSuite();
  All.insert(All.end(), Weaver.begin(), Weaver.end());
  std::vector<workloads::WorkloadInstance> LoopHeavy =
      workloads::loopHeavySuite();
  All.insert(All.end(), LoopHeavy.begin(), LoopHeavy.end());
  std::vector<workloads::WorkloadInstance> Affine =
      workloads::affineSuite();
  All.insert(All.end(), Affine.begin(), Affine.end());
  std::vector<workloads::WorkloadInstance> Suite;
  for (auto &W : All)
    if (W.Family != "bluetooth")
      Suite.push_back(std::move(W));

  core::VerifierConfig Base;
  Base.TimeoutSeconds = benchTimeout();
  runtime::ParallelConfig PC;
  PC.Jobs = 4; // fixed: the race's overlap is the thing being measured

  std::string CacheDir =
      (std::filesystem::temp_directory_path() /
       ("seqver-bench-commut-" + std::to_string(getpid())))
          .string();
  std::error_code EC;
  std::filesystem::remove_all(CacheDir, EC);

  std::printf("== Shared commutativity oracle (parallel portfolio, %u "
              "jobs) ==\n",
              PC.Jobs);
  std::printf("(per-instance timeout %.0fs; sem = hub-merged semantic "
              "solver queries)\n\n",
              benchTimeout());
  printTableHeader(
      {"instance", "sem-priv", "sem-shared", "sem-cold", "sem-warm",
       "hits-shared", "hits-warm"},
      {20, 9, 10, 9, 9, 11, 9});

  ArmTotals Private, Shared, Cold, Warm;
  int64_t WarmLoaded = 0;
  for (const auto &W : Suite) {
    // The disk namespace fingerprints the program the workers build: from
    // source, no preprocessing (default ParallelConfig).
    smt::TermManager TM;
    prog::BuildResult Build = prog::buildFromSource(W.Source, TM);
    if (!Build.ok()) {
      std::fprintf(stderr, "%s: %s\n", W.Name.c_str(), Build.Error.c_str());
      return 1;
    }
    persist::Fingerprint FP = persist::fingerprintProgram(*Build.Program);

    PC.SharedCommut = nullptr;
    runtime::ParallelPortfolioResult RPriv =
        runtime::runPortfolioParallel(W.Source, Base, PC);
    accumulate(Private, W, RPriv);

    red::CommutOracle SharedTable;
    PC.SharedCommut = &SharedTable;
    runtime::ParallelPortfolioResult RShared =
        runtime::runPortfolioParallel(W.Source, Base, PC);
    accumulate(Shared, W, RShared);

    red::CommutOracle ColdTable;
    ColdTable.bindDisk(CacheDir, FP);
    PC.SharedCommut = &ColdTable;
    runtime::ParallelPortfolioResult RCold =
        runtime::runPortfolioParallel(W.Source, Base, PC);
    accumulate(Cold, W, RCold);
    ColdTable.flushDisk();

    red::CommutOracle WarmTable;
    WarmLoaded += static_cast<int64_t>(WarmTable.bindDisk(CacheDir, FP));
    PC.SharedCommut = &WarmTable;
    runtime::ParallelPortfolioResult RWarm =
        runtime::runPortfolioParallel(W.Source, Base, PC);
    accumulate(Warm, W, RWarm);

    printTableRow(
        {W.Name, std::to_string(RPriv.Merged.get("commut_semantic")),
         std::to_string(RShared.Merged.get("commut_semantic")),
         std::to_string(RCold.Merged.get("commut_semantic")),
         std::to_string(RWarm.Merged.get("commut_semantic")),
         std::to_string(RShared.Merged.get("commut_shared_hits")),
         std::to_string(RWarm.Merged.get("commut_shared_hits"))},
        {20, 9, 10, 9, 9, 11, 9});
  }
  std::filesystem::remove_all(CacheDir, EC);

  double SharedDrop = dropPct(Private.Semantic, Shared.Semantic);
  double WarmDrop = dropPct(Cold.Semantic, Warm.Semantic);
  std::printf("\nsemantic solver queries: %lld private, %lld shared "
              "(%.1f%% saved), %lld cold, %lld warm (%.1f%% saved)\n",
              static_cast<long long>(Private.Semantic),
              static_cast<long long>(Shared.Semantic), SharedDrop,
              static_cast<long long>(Cold.Semantic),
              static_cast<long long>(Warm.Semantic), WarmDrop);
  std::printf("successful: %d/%zu private, %d/%zu shared, %d/%zu cold, "
              "%d/%zu warm\n",
              Private.Successful, Suite.size(), Shared.Successful,
              Suite.size(), Cold.Successful, Suite.size(), Warm.Successful,
              Suite.size());

  std::FILE *F = std::fopen(OutPath.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "error: cannot write %s\n", OutPath.c_str());
    return 1;
  }
  std::fprintf(F, "{\n");
  JsonWriter J{F};
  J.field("schema_version", static_cast<int64_t>(1));
  J.field("instances", static_cast<int64_t>(Suite.size()));
  J.field("jobs", static_cast<int64_t>(PC.Jobs));
  J.field("successful_private", static_cast<int64_t>(Private.Successful));
  J.field("successful_shared", static_cast<int64_t>(Shared.Successful));
  J.field("successful_cold", static_cast<int64_t>(Cold.Successful));
  J.field("successful_warm", static_cast<int64_t>(Warm.Successful));
  J.field("commut_semantic_private", Private.Semantic);
  J.field("commut_semantic_shared", Shared.Semantic);
  J.field("commut_semantic_cold", Cold.Semantic);
  J.field("commut_semantic_warm", Warm.Semantic);
  J.field("shared_drop_pct", SharedDrop);
  J.field("warm_drop_pct", WarmDrop);
  J.field("commut_shared_hits_shared", Shared.SharedHits);
  J.field("commut_shared_hits_warm", Warm.SharedHits);
  J.field("warm_entries_loaded", WarmLoaded);
  J.field("smt_queries_private", Private.SmtQueries);
  J.field("smt_queries_shared", Shared.SmtQueries);
  J.field("smt_queries_warm", Warm.SmtQueries);
  J.field("wall_s_private", Private.WallSeconds);
  J.field("wall_s_shared", Shared.WallSeconds);
  J.field("wall_s_cold", Cold.WallSeconds);
  J.field("wall_s_warm", Warm.WallSeconds);
  std::fprintf(F, "\n}\n");
  std::fclose(F);
  std::printf("wrote %s\n", OutPath.c_str());
  return 0;
}
