//===- bench/bench_fig1_bluetooth.cpp - Fig. 1(c) + Sec. 2 claims ---------===//
///
/// Regenerates Figure 1(c): proof size over the number of threads for the
/// bluetooth driver, under the sequential-composition order (red circles in
/// the paper), lockstep (blue +), and three random preference orders (x),
/// plus the Automizer baseline for reference. Also checks the Sec. 2 claim
/// that, with conditional commutativity, instances verify with a constant
/// number of refinement rounds (3) and near-constant assertions.
///
/// The paper plots 2..10 threads; the default here is 2..8 (the baseline
/// becomes the bottleneck; override with SEQVER_FIG1_MAXTHREADS).
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "program/CfgBuilder.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

using namespace seqver;
using namespace seqver::bench;

namespace {

int maxThreads() {
  if (const char *Env = std::getenv("SEQVER_FIG1_MAXTHREADS"))
    return std::atoi(Env);
  return 8;
}

workloads::WorkloadInstance bluetoothInstance(int Users) {
  workloads::WorkloadInstance W;
  W.Name = "bluetooth_" + std::to_string(Users);
  W.Source = workloads::bluetoothSource(Users);
  W.ExpectedCorrect = true;
  W.Family = "bluetooth";
  return W;
}

void printFig1() {
  std::printf("== Figure 1(c): proof size over number of threads "
              "(bluetooth driver) ==\n");
  std::printf("(threads = user threads + 1 stop thread; '-' = not solved "
              "within %.0fs)\n\n",
              benchTimeout());
  std::vector<std::string> Tools = {"seq",     "lockstep", "rand(1)",
                                    "rand(2)", "rand(3)",  "automizer"};
  std::vector<int> Widths = {8, 10, 10, 10, 10, 10, 11};
  std::vector<std::string> Header = {"threads"};
  for (const std::string &Tool : Tools)
    Header.push_back(Tool);
  printTableHeader(Header, Widths);

  std::vector<std::vector<RunRecord>> AllRecords(Tools.size());
  for (int Users = 1; Users < maxThreads(); ++Users) {
    workloads::WorkloadInstance W = bluetoothInstance(Users);
    std::vector<std::string> Row = {std::to_string(Users + 1)};
    for (size_t T = 0; T < Tools.size(); ++T) {
      RunRecord R = runTool(W, Tools[T]);
      AllRecords[T].push_back(R);
      Row.push_back(R.successful() ? std::to_string(R.ProofSize) : "-");
    }
    printTableRow(Row, Widths);
  }

  std::printf("\n== Refinement rounds (same runs) ==\n\n");
  printTableHeader(Header, Widths);
  for (size_t I = 0; I < AllRecords[0].size(); ++I) {
    std::vector<std::string> Row = {std::to_string(I + 2)};
    for (size_t T = 0; T < Tools.size(); ++T) {
      const RunRecord &R = AllRecords[T][I];
      Row.push_back(R.successful() ? std::to_string(R.Rounds) : "-");
    }
    printTableRow(Row, Widths);
  }

  // Sec. 2 claim: with the reduction the number of refinement rounds does
  // not grow with the thread count (the paper reports a constant 3). The
  // baseline's rounds grow roughly linearly.
  int SeqMin = INT32_MAX, SeqMax = 0, BaseFirst = -1, BaseLast = -1;
  for (const RunRecord &R : AllRecords[0])
    if (R.successful()) {
      SeqMin = std::min(SeqMin, R.Rounds);
      SeqMax = std::max(SeqMax, R.Rounds);
    }
  for (const RunRecord &R : AllRecords[5])
    if (R.successful()) {
      if (BaseFirst < 0)
        BaseFirst = R.Rounds;
      BaseLast = R.Rounds;
    }
  std::printf("\nSec. 2 claim check (seq order): rounds stay in [%d, %d] "
              "across sizes (paper: constant 3),\nwhile the baseline grows "
              "from %d to %d: %s\n",
              SeqMin, SeqMax, BaseFirst, BaseLast,
              SeqMax <= SeqMin + 1 && BaseLast > SeqMax ? "SHAPE HOLDS"
                                                        : "SHAPE DIFFERS");

  // Sec. 2's "constant number of assertions (i.e. 12)": our wp-chain
  // predicate source enumerates more candidates than interpolation, so the
  // comparable figure is the greedily *minimized* proof (see
  // VerifierConfig::MinimizeProof).
  std::printf("\n== Minimized proof size (seq order) ==\n\n");
  printTableHeader({"threads", "proof", "minimized"}, {8, 6, 10});
  int MaxMinimized = 0;
  for (int Users = 1; Users < std::min(maxThreads(), 6); ++Users) {
    smt::TermManager TM;
    prog::BuildResult B = prog::buildFromSource(
        workloads::bluetoothSource(Users), TM);
    if (!B.ok())
      continue;
    core::VerifierConfig Config;
    Config.TimeoutSeconds = benchTimeout() * 3;
    Config.MinimizeProof = true;
    core::VerificationResult R =
        core::runSingleOrder(*B.Program, Config, "seq");
    if (R.V != core::Verdict::Correct)
      continue;
    printTableRow({std::to_string(Users + 1), std::to_string(R.ProofSize),
                   std::to_string(R.MinimizedProofSize)},
                  {8, 6, 10});
    MaxMinimized = std::max(MaxMinimized,
                            static_cast<int>(R.MinimizedProofSize));
  }
  std::printf("paper: constant 12 assertions; measured minimized proofs "
              "stay <= %d across sizes.\n",
              MaxMinimized);

  // Proof-sensitivity contrast on a mid-size instance (Sec. 2).
  int Mid = std::min(4, maxThreads() - 1);
  workloads::WorkloadInstance W = bluetoothInstance(Mid);
  RunRecord With = runTool(W, "seq");
  RunRecord Without = runTool(W, "seq-nops");
  std::printf("\nProof-sensitive commutativity on bluetooth_%d (seq):\n"
              "  with:    proof=%zu rounds=%d peak-states=%lld\n"
              "  without: proof=%zu rounds=%d peak-states=%lld\n",
              Mid, With.ProofSize, With.Rounds,
              static_cast<long long>(With.PeakVisited), Without.ProofSize,
              Without.Rounds,
              static_cast<long long>(Without.PeakVisited));
}

/// Microbenchmark: one full verification of bluetooth(n) with seq.
void BM_VerifyBluetoothSeq(benchmark::State &State) {
  workloads::WorkloadInstance W =
      bluetoothInstance(static_cast<int>(State.range(0)));
  for (auto _ : State) {
    RunRecord R = runTool(W, "seq");
    benchmark::DoNotOptimize(R.ProofSize);
  }
}
BENCHMARK(BM_VerifyBluetoothSeq)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printFig1();
  std::printf("\n== Microbenchmarks ==\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
