//===- bench/Harness.cpp - Shared experiment harness ----------------------===//

#include "Harness.h"

#include "program/CfgBuilder.h"
#include "runtime/ParallelPortfolio.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <cstdlib>

using namespace seqver;
using namespace seqver::bench;
using seqver::core::Verdict;
using seqver::core::VerificationResult;
using seqver::core::VerifierConfig;

double seqver::bench::benchTimeout() {
  if (const char *Env = std::getenv("SEQVER_BENCH_TIMEOUT"))
    return std::atof(Env);
  return 10.0;
}

namespace {

RunRecord toRecord(const workloads::WorkloadInstance &W,
                   const std::string &Tool, const VerificationResult &R,
                   const std::string &BestOrder = "") {
  RunRecord Out;
  Out.Instance = W.Name;
  Out.Family = W.Family;
  Out.ExpectedCorrect = W.ExpectedCorrect;
  Out.Tool = Tool;
  Out.V = R.V;
  Out.Seconds = R.Seconds;
  Out.Rounds = R.Rounds;
  Out.ProofSize = R.ProofSize;
  Out.PeakVisited = R.Stats.get("peak_visited");
  Out.CommutQueries = R.Stats.get("commut_queries");
  Out.CommutSyntactic = R.Stats.get("commut_syntactic");
  Out.CommutStatic = R.Stats.get("commut_static");
  Out.CommutOctagon = R.Stats.get("commut_octagon");
  Out.CommutKarr = R.Stats.get("commut_karr");
  Out.SemanticChecks = R.Stats.get("semantic_commut_checks");
  Out.SmtQueries = R.Stats.get("smt_queries");
  Out.SeededPredicates = R.Stats.get("seeded_predicates");
  Out.KarrSeeded = R.Stats.get("karr_seeded");
  Out.InternHits = R.Stats.get("intern_hits");
  Out.InternMisses = R.Stats.get("intern_misses");
  Out.PeakInternedSets = R.Stats.get("peak_interned_sets");
  Out.SleepsetInlineSets = R.Stats.get("sleepset_inline_sets");
  Out.SleepsetSpillSets = R.Stats.get("sleepset_spill_sets");
  Out.CacheHits = R.Stats.get("cache_hits");
  Out.CacheMisses = R.Stats.get("cache_misses");
  Out.CacheSeeded = R.Stats.get("cache_seeded");
  Out.RoundsSavedWarm = R.Stats.get("rounds_saved_warm");
  Out.CacheStores = R.Stats.get("cache_stores");
  Out.BestOrder = BestOrder;
  return Out;
}

/// Portfolio with a config transformer applied per order.
template <typename ConfigFn>
RunRecord runPortfolioVariant(const workloads::WorkloadInstance &W,
                              const std::string &Tool, ConfigFn Transform) {
  smt::TermManager TM;
  prog::BuildResult B = prog::buildFromSource(W.Source, TM);
  if (!B.ok()) {
    std::fprintf(stderr, "build error in %s: %s\n", W.Name.c_str(),
                 B.Error.c_str());
    RunRecord Out;
    Out.Instance = W.Name;
    Out.Tool = Tool;
    return Out;
  }
  auto Orders = red::makePortfolioOrders(*B.Program);
  VerificationResult Best;
  std::string BestOrder;
  bool HaveBest = false;
  for (auto &Order : Orders) {
    VerifierConfig Config;
    Config.TimeoutSeconds = benchTimeout();
    Config.Order = Order.get();
    Transform(Config);
    core::Verifier V(*B.Program, Config);
    VerificationResult R = V.run();
    bool Decisive = R.V == Verdict::Correct || R.V == Verdict::Incorrect;
    if (Decisive && (!HaveBest || R.Seconds < Best.Seconds)) {
      Best = R;
      BestOrder = Order->name();
      HaveBest = true;
    }
    if (!HaveBest && Best.Rounds == 0) {
      Best = R;
      BestOrder = Order->name();
    }
  }
  return toRecord(W, Tool, Best, BestOrder);
}

} // namespace

RunRecord seqver::bench::runTool(const workloads::WorkloadInstance &W,
                                 const std::string &Tool) {
  if (Tool == "automizer") {
    smt::TermManager TM;
    prog::BuildResult B = prog::buildFromSource(W.Source, TM);
    if (!B.ok()) {
      RunRecord Out;
      Out.Instance = W.Name;
      Out.Tool = Tool;
      return Out;
    }
    VerifierConfig Config = VerifierConfig::baseline();
    Config.TimeoutSeconds = benchTimeout();
    core::Verifier V(*B.Program, Config);
    return toRecord(W, Tool, V.run());
  }
  if (Tool == "gemcutter")
    return runPortfolioVariant(W, Tool, [](VerifierConfig &) {});
  if (Tool == "gemcutter-par") {
    VerifierConfig Config;
    Config.TimeoutSeconds = benchTimeout();
    runtime::ParallelPortfolioResult R =
        runtime::runPortfolioParallel(W.Source, Config);
    RunRecord Out = toRecord(W, Tool, R.Best, R.BestOrder);
    Out.WallSeconds = R.WallSeconds;
    Out.RaceCostSeconds = R.sumSeconds();
    // The winner's lazily-registered counters miss whatever only the losing
    // orders touched; the hub-merged statistics are the race's true per-tier
    // totals (each worker's sink carries its verifier-exported counters).
    Out.CommutQueries = R.Merged.get("commut_queries");
    Out.CommutSyntactic = R.Merged.get("commut_syntactic");
    Out.CommutStatic = R.Merged.get("commut_static");
    Out.CommutOctagon = R.Merged.get("commut_octagon");
    Out.CommutKarr = R.Merged.get("commut_karr");
    Out.SemanticChecks = R.Merged.get("semantic_commut_checks");
    Out.SmtQueries = R.Merged.get("smt_queries");
    Out.SeededPredicates = R.Merged.get("seeded_predicates");
    Out.KarrSeeded = R.Merged.get("karr_seeded");
    Out.InternHits = R.Merged.get("intern_hits");
    Out.InternMisses = R.Merged.get("intern_misses");
    Out.PeakInternedSets = R.Merged.get("peak_interned_sets");
    Out.SleepsetInlineSets = R.Merged.get("sleepset_inline_sets");
    Out.SleepsetSpillSets = R.Merged.get("sleepset_spill_sets");
    Out.CacheHits = R.Merged.get("cache_hits");
    Out.CacheMisses = R.Merged.get("cache_misses");
    Out.CacheSeeded = R.Merged.get("cache_seeded");
    Out.RoundsSavedWarm = R.Merged.get("rounds_saved_warm");
    Out.CacheStores = R.Merged.get("cache_stores");
    return Out;
  }
  if (Tool == "gemcutter-oct")
    return runPortfolioVariant(W, Tool, [](VerifierConfig &C) {
      C.SeedProof = true;
    });
  if (Tool == "gemcutter-nooct")
    return runPortfolioVariant(W, Tool, [](VerifierConfig &C) {
      C.OctagonTier = false;
      C.KarrTier = false;
      C.SeedProof = false;
    });
  if (Tool == "gemcutter-karr")
    return runPortfolioVariant(W, Tool, [](VerifierConfig &C) {
      C.SeedProof = true;
    });
  if (Tool == "gemcutter-nokarr")
    return runPortfolioVariant(W, Tool, [](VerifierConfig &C) {
      C.KarrTier = false;
      C.SeedProof = true;
    });
  if (Tool == "sleep")
    return runPortfolioVariant(W, Tool, [](VerifierConfig &C) {
      C.UsePersistentSets = false;
    });
  if (Tool == "persistent")
    return runPortfolioVariant(W, Tool, [](VerifierConfig &C) {
      C.UseSleepSets = false;
      C.ProofSensitive = false;
    });
  if (Tool == "gemcutter-nops")
    return runPortfolioVariant(W, Tool, [](VerifierConfig &C) {
      C.ProofSensitive = false;
    });
  if (Tool == "seq-nops") {
    smt::TermManager TM;
    prog::BuildResult B = prog::buildFromSource(W.Source, TM);
    if (!B.ok()) {
      RunRecord Out;
      Out.Instance = W.Name;
      Out.Tool = Tool;
      return Out;
    }
    VerifierConfig Config;
    Config.TimeoutSeconds = benchTimeout();
    Config.ProofSensitive = false;
    return toRecord(W, Tool,
                    core::runSingleOrder(*B.Program, Config, "seq"));
  }
  // Single named order.
  smt::TermManager TM;
  prog::BuildResult B = prog::buildFromSource(W.Source, TM);
  if (!B.ok()) {
    RunRecord Out;
    Out.Instance = W.Name;
    Out.Tool = Tool;
    return Out;
  }
  VerifierConfig Config;
  Config.TimeoutSeconds = benchTimeout();
  return toRecord(W, Tool, core::runSingleOrder(*B.Program, Config, Tool));
}

std::vector<RunRecord> seqver::bench::runSuite(
    const std::vector<workloads::WorkloadInstance> &Suite,
    const std::string &Tool, bool Verbose) {
  std::vector<RunRecord> Out;
  Out.reserve(Suite.size());
  for (const workloads::WorkloadInstance &W : Suite) {
    RunRecord R = runTool(W, Tool);
    if (Verbose)
      std::printf("  %-24s %-10s %-9s %7.2fs rounds=%d proof=%zu\n",
                  R.Instance.c_str(), Tool.c_str(),
                  core::verdictName(R.V).c_str(), R.Seconds, R.Rounds,
                  R.ProofSize);
    Out.push_back(std::move(R));
  }
  return Out;
}

void seqver::bench::printTableHeader(const std::vector<std::string> &Columns,
                                     const std::vector<int> &Widths) {
  std::string Line;
  for (size_t I = 0; I < Columns.size(); ++I)
    Line += padLeft(Columns[I], static_cast<size_t>(Widths[I])) + "  ";
  std::printf("%s\n", Line.c_str());
  std::printf("%s\n", std::string(Line.size(), '-').c_str());
}

void seqver::bench::printTableRow(const std::vector<std::string> &Cells,
                                  const std::vector<int> &Widths) {
  std::string Line;
  for (size_t I = 0; I < Cells.size(); ++I)
    Line += padLeft(Cells[I], static_cast<size_t>(Widths[I])) + "  ";
  std::printf("%s\n", Line.c_str());
}

SuiteAggregate seqver::bench::aggregate(const std::vector<RunRecord> &Records,
                                        int Filter) {
  SuiteAggregate Out;
  for (const RunRecord &R : Records) {
    if (Filter == 1 && !R.ExpectedCorrect)
      continue;
    if (Filter == 2 && R.ExpectedCorrect)
      continue;
    if (!R.successful())
      continue;
    ++Out.Successful;
    Out.TotalSeconds += R.Seconds;
    Out.TotalPeakVisited += R.PeakVisited;
    Out.TotalRounds += R.Rounds;
    Out.TotalCommutQueries += R.CommutQueries;
    Out.TotalCommutStatic += R.CommutStatic;
    Out.TotalCommutOctagon += R.CommutOctagon;
    Out.TotalCommutKarr += R.CommutKarr;
    Out.TotalSemanticChecks += R.SemanticChecks;
    Out.TotalSmtQueries += R.SmtQueries;
    Out.TotalSeededPredicates += R.SeededPredicates;
    Out.TotalKarrSeeded += R.KarrSeeded;
    Out.TotalInternHits += R.InternHits;
    Out.TotalInternMisses += R.InternMisses;
    Out.TotalPeakInternedSets += R.PeakInternedSets;
    Out.TotalSleepsetInlineSets += R.SleepsetInlineSets;
    Out.TotalSleepsetSpillSets += R.SleepsetSpillSets;
    Out.TotalCacheHits += R.CacheHits;
    Out.TotalCacheMisses += R.CacheMisses;
    Out.TotalCacheSeeded += R.CacheSeeded;
    Out.TotalRoundsSavedWarm += R.RoundsSavedWarm;
    Out.TotalCacheStores += R.CacheStores;
  }
  return Out;
}
