//===- bench/bench_fig7_scatter.cpp - Fig. 7 ------------------------------===//
///
/// Regenerates Figure 7: scatter data comparing Automizer (x-axis) with
/// GemCutter (y-axis) on the commonly-solved instances, for (a) refinement
/// rounds and (b) proof size, annotated correct (+) / incorrect (x). The
/// paper reports reductions up to 25x (rounds) and 65x (proof size); the
/// harness prints the observed maximum improvement factors.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

using namespace seqver;
using namespace seqver::bench;

namespace {

/// Microbenchmark: one portfolio verification of a representative instance.
void BM_PortfolioMutexSafe3(benchmark::State &State) {
  workloads::WorkloadInstance W;
  for (const auto &Inst : workloads::svcompLikeSuite())
    if (Inst.Name == "mutex_safe_3")
      W = Inst;
  for (auto _ : State) {
    RunRecord R = runTool(W, "gemcutter");
    benchmark::DoNotOptimize(R.Rounds);
  }
}
BENCHMARK(BM_PortfolioMutexSafe3)->Unit(benchmark::kMillisecond);

} // namespace


int main(int argc, char **argv) {
  std::printf("== Figure 7: Automizer (x) vs GemCutter (y) scatter ==\n");
  auto Suite = workloads::svcompLikeSuite();
  auto Weaver = workloads::weaverLikeSuite();
  Suite.insert(Suite.end(), Weaver.begin(), Weaver.end());

  auto Automizer = runSuite(Suite, "automizer");
  auto GemCutter = runSuite(Suite, "gemcutter");

  printTableHeader({"instance", "mark", "rounds A", "rounds G", "proof A",
                    "proof G"},
                   {24, 5, 9, 9, 8, 8});
  double MaxRoundFactor = 1, MaxProofFactor = 1;
  for (size_t I = 0; I < Suite.size(); ++I) {
    const RunRecord &A = Automizer[I];
    const RunRecord &G = GemCutter[I];
    if (!A.successful() || !G.successful())
      continue;
    printTableRow({A.Instance, A.ExpectedCorrect ? "+" : "x",
                   std::to_string(A.Rounds), std::to_string(G.Rounds),
                   std::to_string(A.ProofSize),
                   std::to_string(G.ProofSize)},
                  {24, 5, 9, 9, 8, 8});
    if (G.Rounds > 0)
      MaxRoundFactor = std::max(
          MaxRoundFactor, static_cast<double>(A.Rounds) / G.Rounds);
    if (G.ProofSize > 0)
      MaxProofFactor =
          std::max(MaxProofFactor,
                   static_cast<double>(A.ProofSize) / G.ProofSize);
  }
  std::printf("\nmax improvement factors (GemCutter over Automizer): "
              "rounds %.1fx, proof size %.1fx\n",
              MaxRoundFactor, MaxProofFactor);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
