//===- bench/bench_fig8_best_order.cpp - Fig. 8 ---------------------------===//
///
/// Regenerates Figure 8: for every benchmark, the preference order with the
/// best (fastest decisive) analysis, counted per order and split into
/// correct (blue, hatched in the paper) and incorrect (red) programs. The
/// paper observes a relatively even distribution -- no always-optimal order.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "support/StringUtils.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

using namespace seqver;
using namespace seqver::bench;

namespace {

/// Microbenchmark: one portfolio verification of a representative instance.
void BM_PortfolioMutexSafe3(benchmark::State &State) {
  workloads::WorkloadInstance W;
  for (const auto &Inst : workloads::svcompLikeSuite())
    if (Inst.Name == "mutex_safe_3")
      W = Inst;
  for (auto _ : State) {
    RunRecord R = runTool(W, "gemcutter");
    benchmark::DoNotOptimize(R.Rounds);
  }
}
BENCHMARK(BM_PortfolioMutexSafe3)->Unit(benchmark::kMillisecond);

} // namespace


int main(int argc, char **argv) {
  std::printf("== Figure 8: programs per best preference order ==\n\n");
  auto Suite = workloads::svcompLikeSuite();
  auto Weaver = workloads::weaverLikeSuite();
  Suite.insert(Suite.end(), Weaver.begin(), Weaver.end());

  const std::vector<std::string> Orders = {"seq", "lockstep", "rand(1)",
                                           "rand(2)", "rand(3)"};
  std::map<std::string, int> CorrectWins, IncorrectWins;

  for (const workloads::WorkloadInstance &W : Suite) {
    std::string Best;
    double BestTime = 0;
    for (const std::string &Order : Orders) {
      RunRecord R = runTool(W, Order);
      if (!R.successful())
        continue;
      if (Best.empty() || R.Seconds < BestTime) {
        Best = Order;
        BestTime = R.Seconds;
      }
    }
    if (Best.empty())
      continue;
    if (W.ExpectedCorrect)
      ++CorrectWins[Best];
    else
      ++IncorrectWins[Best];
  }

  printTableHeader({"order", "correct", "incorrect", "total"},
                   {10, 9, 11, 7});
  int MaxTotal = 0, MinTotal = INT32_MAX;
  for (const std::string &Order : Orders) {
    int C = CorrectWins[Order];
    int I = IncorrectWins[Order];
    printTableRow({Order, std::to_string(C), std::to_string(I),
                   std::to_string(C + I)},
                  {10, 9, 11, 7});
    MaxTotal = std::max(MaxTotal, C + I);
    MinTotal = std::min(MinTotal, C + I);
  }
  std::printf("\npaper's observation: the distribution is relatively even "
              "(no always-optimal order).\nobserved spread: min=%d max=%d\n",
              MinTotal, MaxTotal);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
