//===- bench/bench_ext_adaptive_order.cpp - Limitations extension ----------===//
///
/// Extension experiment beyond the paper: the Limitations paragraph of
/// Sec. 8 suggests "an approach that can dynamically adjust a choice of a
/// preference order based on partial verification efforts". This bench
/// compares three single-core scheduling strategies over the preference
/// orders:
///   parallel    the paper's portfolio, charged only the winner's time
///               (as-if-parallel lower bound; needs 5 cores)
///   sequential  run orders one after another until one decides
///               (naive single-core portfolio)
///   adaptive    iterative-deepening budgets across orders (our dynamic
///               adjustment; single core)
///
/// Expected shape: adaptive tracks the parallel portfolio's solved count
/// while paying far less than the sequential worst case when the good
/// order is not first.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "program/CfgBuilder.h"
#include "support/StringUtils.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace seqver;
using namespace seqver::bench;

namespace {

struct StrategyAgg {
  int Solved = 0;
  double TotalSeconds = 0;
};

StrategyAgg runParallel(const std::vector<workloads::WorkloadInstance> &Suite) {
  StrategyAgg Out;
  for (auto Records = runSuite(Suite, "gemcutter");
       const RunRecord &R : Records) {
    if (!R.successful())
      continue;
    ++Out.Solved;
    Out.TotalSeconds += R.Seconds;
  }
  return Out;
}

StrategyAgg
runSequential(const std::vector<workloads::WorkloadInstance> &Suite) {
  StrategyAgg Out;
  const char *Orders[] = {"seq", "lockstep", "rand(1)", "rand(2)",
                          "rand(3)"};
  for (const workloads::WorkloadInstance &W : Suite) {
    double Spent = 0;
    bool Solved = false;
    for (const char *Order : Orders) {
      RunRecord R = runTool(W, Order);
      Spent += R.Seconds;
      if (R.successful()) {
        Solved = true;
        break;
      }
      if (Spent > benchTimeout())
        break;
    }
    if (Solved) {
      ++Out.Solved;
      Out.TotalSeconds += Spent;
    }
  }
  return Out;
}

StrategyAgg
runAdaptive(const std::vector<workloads::WorkloadInstance> &Suite) {
  StrategyAgg Out;
  for (const workloads::WorkloadInstance &W : Suite) {
    smt::TermManager TM;
    prog::BuildResult B = prog::buildFromSource(W.Source, TM);
    if (!B.ok())
      continue;
    core::VerifierConfig Config;
    Config.TimeoutSeconds = benchTimeout();
    core::AdaptiveResult R = core::runAdaptivePortfolio(*B.Program, Config);
    bool Successful =
        (R.Result.V == core::Verdict::Correct) == W.ExpectedCorrect &&
        (R.Result.V == core::Verdict::Correct ||
         R.Result.V == core::Verdict::Incorrect);
    if (Successful) {
      ++Out.Solved;
      Out.TotalSeconds += R.Result.Seconds;
    }
  }
  return Out;
}

void BM_AdaptiveBluetooth2(benchmark::State &State) {
  smt::TermManager TM;
  prog::BuildResult B =
      prog::buildFromSource(workloads::bluetoothSource(2), TM);
  for (auto _ : State) {
    core::VerifierConfig Config;
    Config.TimeoutSeconds = 30;
    auto R = core::runAdaptivePortfolio(*B.Program, Config);
    benchmark::DoNotOptimize(R.Result.Rounds);
  }
}
BENCHMARK(BM_AdaptiveBluetooth2)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  std::printf("== Extension: dynamic preference-order scheduling "
              "(Limitations, Sec. 8) ==\n\n");
  const std::vector<std::pair<std::string,
                              std::vector<workloads::WorkloadInstance>>>
      Suites = {{"SV-COMP-like", workloads::svcompLikeSuite()},
                {"Weaver-like", workloads::weaverLikeSuite()}};
  printTableHeader({"suite", "strategy", "solved", "time(s)"},
                   {14, 12, 7, 9});
  for (const auto &[Name, Suite] : Suites) {
    StrategyAgg Parallel = runParallel(Suite);
    StrategyAgg Sequential = runSequential(Suite);
    StrategyAgg Adaptive = runAdaptive(Suite);
    printTableRow({Name, "parallel", std::to_string(Parallel.Solved),
                   formatDouble(Parallel.TotalSeconds, 2)},
                  {14, 12, 7, 9});
    printTableRow({Name, "sequential", std::to_string(Sequential.Solved),
                   formatDouble(Sequential.TotalSeconds, 2)},
                  {14, 12, 7, 9});
    printTableRow({Name, "adaptive", std::to_string(Adaptive.Solved),
                   formatDouble(Adaptive.TotalSeconds, 2)},
                  {14, 12, 7, 9});
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
