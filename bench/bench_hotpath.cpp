//===- bench/bench_hotpath.cpp - Hot-path interning microbenchmark --------===//
///
/// Measures the state-index hot path before and after the interning
/// overhaul (docs/PERF.md): the generic sleep-set construction and the
/// program-reduction construction are timed against the pre-change ordered
/// std::map index (kept behind materializeOrdered / LegacyIndex), and the
/// verifier's DFS is profiled over the tier-1 suites under the "seq" order.
///
/// Writes a flat BENCH_hotpath.json (path in argv[1], default
/// BENCH_hotpath.json in the working directory) that tools/check_perf.sh
/// diffs against the checked-in baseline at the repo root; a wall-time
/// regression beyond the tolerance fails the gate.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "program/CfgBuilder.h"
#include "reduction/SleepSet.h"
#include "smt/Solver.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/Timer.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace seqver;
using namespace seqver::bench;
using seqver::automata::Dfa;
using seqver::automata::Letter;

namespace {

//===----------------------------------------------------------------------===//
// Part 1: generic sleep-set construction, hashed vs ordered index
//===----------------------------------------------------------------------===//

/// Non-positional order preferring smaller letter indices; the generic
/// construction needs no program to exist.
struct IdentityOrder final : red::PreferenceOrder {
  bool less(Context, Letter A, Letter B) const override { return A < B; }
  bool isPositional() const override { return false; }
  std::string name() const override { return "identity"; }
};

/// Deterministic pseudo-random complete DFA: every letter enabled in every
/// state. The sleep-set unrolling of this automaton fans out into tens of
/// thousands of (state, sleep set) pairs — exactly the index-dominated
/// workload the interning targets.
Dfa syntheticDfa(uint32_t NumStates, uint32_t NumLetters) {
  Dfa D(NumLetters);
  for (uint32_t S = 0; S < NumStates; ++S)
    D.addState(S % 7 == 0);
  D.setInitial(0);
  for (uint32_t S = 0; S < NumStates; ++S)
    for (Letter L = 0; L < NumLetters; ++L)
      D.addTransition(S, L, (S * 31 + (L + 1) * 17) % NumStates);
  return D;
}

struct TimedStates {
  uint32_t States = 0;
  double Seconds = 0;

  double statesPerSec() const {
    return Seconds > 0 ? static_cast<double>(States) / Seconds : 0;
  }
};

TimedStates runSynthetic(bool LegacyIndex) {
  constexpr uint32_t kBaseStates = 512;
  constexpr uint32_t kLetters = 12;
  constexpr uint32_t kCap = 40000;
  constexpr int kReps = 5;
  Dfa Base = syntheticDfa(kBaseStates, kLetters);
  IdentityOrder Order;
  // Half the letter pairs commute (same parity): rich, varied sleep sets.
  auto Commutes = [](Letter A, Letter B) { return ((A ^ B) & 1) == 0; };

  TimedStates Out;
  for (int Rep = 0; Rep < kReps; ++Rep) {
    Timer T;
    bool Overflow = false;
    Dfa R = red::sleepSetAutomaton(Base, Order, Commutes, kCap, &Overflow,
                                   LegacyIndex);
    Out.Seconds += T.seconds();
    Out.States = R.numStates();
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Part 2: program-reduction construction, hashed vs ordered index
//===----------------------------------------------------------------------===//

struct ReductionResultPair {
  TimedStates Hashed;
  TimedStates Legacy;
  Statistics Stats; // counters of the hashed builds
};

/// Times buildReduction over a set of tier-1 sources with both indices. The
/// commutativity cache is warmed by one untimed build first, so both
/// variants pay identical (zero) commutativity cost and the measurement
/// isolates the state index.
ReductionResultPair runReductionBench() {
  std::vector<std::string> Sources;
  for (const auto &W : workloads::svcompLikeSuite())
    Sources.push_back(W.Source);
  Sources.push_back(workloads::bluetoothSource(3));
  Sources.push_back(workloads::bluetoothSource(4));

  constexpr int kReps = 3;
  ReductionResultPair Out;
  for (const std::string &Source : Sources) {
    smt::TermManager TM;
    prog::BuildResult B = prog::buildFromSource(Source, TM);
    if (!B.ok())
      continue;
    smt::QueryEngine QE(TM);
    red::CommutativityChecker Commut(
        *B.Program, QE, red::CommutativityChecker::Mode::Static);
    red::SequentialOrder Order(*B.Program);

    red::ReductionConfig Warm;
    Warm.LegacyIndex = false;
    Warm.Stats = &Out.Stats;
    red::buildReduction(*B.Program, &Order, Commut, Warm); // warm cache

    for (int Rep = 0; Rep < kReps; ++Rep) {
      red::ReductionConfig Legacy;
      Legacy.LegacyIndex = true;
      Timer TL;
      auto RL = red::buildReduction(*B.Program, &Order, Commut, Legacy);
      Out.Legacy.Seconds += TL.seconds();
      Out.Legacy.States += RL.Automaton.numStates();

      red::ReductionConfig Hashed;
      Hashed.LegacyIndex = false;
      Timer TH;
      auto RH = red::buildReduction(*B.Program, &Order, Commut, Hashed);
      Out.Hashed.Seconds += TH.seconds();
      Out.Hashed.States += RH.Automaton.numStates();
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// JSON output
//===----------------------------------------------------------------------===//

struct JsonWriter {
  std::FILE *F;
  bool First = true;

  void field(const char *Name, double Value) {
    std::fprintf(F, "%s  \"%s\": %.6g", First ? "" : ",\n", Name, Value);
    First = false;
  }
  void field(const char *Name, int64_t Value) {
    std::fprintf(F, "%s  \"%s\": %lld", First ? "" : ",\n", Name,
                 static_cast<long long>(Value));
    First = false;
  }
};

} // namespace

int main(int argc, char **argv) {
  std::string OutPath = argc > 1 ? argv[1] : "BENCH_hotpath.json";

  std::printf("== Hot-path interning microbenchmark ==\n");
  std::printf("(per-instance timeout %.0fs; legacy = pre-interning ordered "
              "std::map state index)\n\n",
              benchTimeout());

  // Part 1: synthetic sleep-set construction. Legacy first so the hashed
  // run cannot benefit from warmer caches.
  TimedStates SynLegacy = runSynthetic(/*LegacyIndex=*/true);
  TimedStates SynHashed = runSynthetic(/*LegacyIndex=*/false);
  double SynSpeedup = SynLegacy.Seconds > 0 && SynHashed.Seconds > 0
                          ? SynLegacy.Seconds / SynHashed.Seconds
                          : 0;
  std::printf("-- generic sleep-set automaton (synthetic, %u states) --\n",
              SynHashed.States);
  std::vector<int> W1 = {10, 10, 12, 14};
  printTableHeader({"index", "wall(s)", "states", "states/s"}, W1);
  printTableRow({"legacy", formatDouble(SynLegacy.Seconds, 3),
                 std::to_string(SynLegacy.States),
                 formatDouble(SynLegacy.statesPerSec(), 0)},
                W1);
  printTableRow({"hashed", formatDouble(SynHashed.Seconds, 3),
                 std::to_string(SynHashed.States),
                 formatDouble(SynHashed.statesPerSec(), 0)},
                W1);
  std::printf("speedup (hashed over legacy): %.2fx\n\n", SynSpeedup);
  if (SynLegacy.States != SynHashed.States)
    std::printf("WARNING: index paths disagree on state count!\n");

  // Part 2: program-reduction construction over tier-1 sources.
  ReductionResultPair Red = runReductionBench();
  double RedSpeedup = Red.Legacy.Seconds > 0 && Red.Hashed.Seconds > 0
                          ? Red.Legacy.Seconds / Red.Hashed.Seconds
                          : 0;
  std::printf("-- program reduction construction (tier-1 sources, summed) "
              "--\n");
  printTableHeader({"index", "wall(s)", "states", "states/s"}, W1);
  printTableRow({"legacy", formatDouble(Red.Legacy.Seconds, 3),
                 std::to_string(Red.Legacy.States),
                 formatDouble(Red.Legacy.statesPerSec(), 0)},
                W1);
  printTableRow({"hashed", formatDouble(Red.Hashed.Seconds, 3),
                 std::to_string(Red.Hashed.States),
                 formatDouble(Red.Hashed.statesPerSec(), 0)},
                W1);
  std::printf("speedup (hashed over legacy): %.2fx\n\n", RedSpeedup);

  // Part 3: full verifier DFS over the tier-1 suites ("seq" order: a single
  // deterministic configuration, so wall time is comparable run-to-run).
  Timer SuiteTimer;
  auto Suite = workloads::svcompLikeSuite();
  for (const auto &Inst : workloads::weaverLikeSuite())
    Suite.push_back(Inst);
  auto Records = runSuite(Suite, "seq");
  double SuiteWall = SuiteTimer.seconds();
  SuiteAggregate A = aggregate(Records);
  double WallPerRound =
      A.TotalRounds > 0 ? A.TotalSeconds / static_cast<double>(A.TotalRounds)
                        : 0;
  double DfsStatesPerSec =
      A.TotalSeconds > 0
          ? static_cast<double>(A.TotalPeakVisited) / A.TotalSeconds
          : 0;
  std::printf("-- verifier DFS, tier-1 suites, seq order --\n");
  std::printf("instances=%zu successful=%d wall=%.2fs verify=%.2fs "
              "rounds=%lld\n",
              Suite.size(), A.Successful, SuiteWall, A.TotalSeconds,
              static_cast<long long>(A.TotalRounds));
  std::printf("wall_s_per_round=%.4f dfs_states_per_sec=%.0f\n", WallPerRound,
              DfsStatesPerSec);
  std::printf("intern_hit_rate=%.1f%% peak_interned_sets=%lld "
              "sleepset_bitset=%.1f%%\n",
              A.internHitRatePct(),
              static_cast<long long>(A.TotalPeakInternedSets),
              A.sleepsetBitsetPct());

  std::FILE *F = std::fopen(OutPath.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "cannot open %s for writing\n", OutPath.c_str());
    return 1;
  }
  std::fprintf(F, "{\n");
  JsonWriter J{F};
  J.field("schema_version", static_cast<int64_t>(1));
  J.field("synthetic_states", static_cast<int64_t>(SynHashed.States));
  J.field("synthetic_wall_s_hashed", SynHashed.Seconds);
  J.field("synthetic_wall_s_legacy", SynLegacy.Seconds);
  J.field("synthetic_states_per_sec_hashed", SynHashed.statesPerSec());
  J.field("synthetic_states_per_sec_legacy", SynLegacy.statesPerSec());
  J.field("synthetic_speedup", SynSpeedup);
  J.field("reduction_states", static_cast<int64_t>(Red.Hashed.States));
  J.field("reduction_wall_s_hashed", Red.Hashed.Seconds);
  J.field("reduction_wall_s_legacy", Red.Legacy.Seconds);
  J.field("reduction_states_per_sec_hashed", Red.Hashed.statesPerSec());
  J.field("reduction_states_per_sec_legacy", Red.Legacy.statesPerSec());
  J.field("reduction_speedup", RedSpeedup);
  J.field("suite_instances", static_cast<int64_t>(Suite.size()));
  J.field("suite_successful", static_cast<int64_t>(A.Successful));
  J.field("suite_wall_s", SuiteWall);
  J.field("suite_verify_s", A.TotalSeconds);
  J.field("suite_rounds", A.TotalRounds);
  J.field("wall_s_per_round", WallPerRound);
  J.field("dfs_states_per_sec", DfsStatesPerSec);
  J.field("intern_hits", A.TotalInternHits);
  J.field("intern_misses", A.TotalInternMisses);
  J.field("intern_hit_rate_pct", A.internHitRatePct());
  J.field("peak_interned_sets", A.TotalPeakInternedSets);
  J.field("sleepset_bitset_pct", A.sleepsetBitsetPct());
  std::fprintf(F, "\n}\n");
  std::fclose(F);
  std::printf("\nwrote %s\n", OutPath.c_str());

  // Differential sanity: both indices must build identical automata.
  if (SynLegacy.States != SynHashed.States ||
      Red.Legacy.States != Red.Hashed.States) {
    std::fprintf(stderr, "FAIL: legacy and hashed state counts differ\n");
    return 1;
  }
  return 0;
}
