//===- bench/bench_table1_overview.cpp - Table 1 ---------------------------===//
///
/// Regenerates Table 1: number of successfully analysed benchmarks, CPU
/// time, memory, and refinement rounds for the Automizer baseline vs the
/// GemCutter portfolio, on the SV-COMP-like and Weaver-like suites, split by
/// correct/incorrect instances. Memory is proxied by peak DFS states (the
/// dominating allocation of the proof check); see EXPERIMENTS.md.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "program/CfgBuilder.h"
#include "support/StringUtils.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace seqver;
using namespace seqver::bench;

namespace {

void printSuiteBlock(const std::string &SuiteName,
                     const std::vector<workloads::WorkloadInstance> &Suite) {
  std::printf("\n-- %s (%zu instances) --\n", SuiteName.c_str(),
              Suite.size());
  auto Automizer = runSuite(Suite, "automizer");
  auto GemCutter = runSuite(Suite, "gemcutter");

  std::vector<int> Widths = {14, 5, 10, 12, 8, 5, 10, 12, 8};
  printTableHeader({"", "#", "time(s)", "peak-states", "rounds", "#",
                    "time(s)", "peak-states", "rounds"},
                   Widths);
  std::printf("%-14s %s\n", "",
              "        Automizer                       GemCutter");
  for (int Filter : {0, 1, 2}) {
    SuiteAggregate A = aggregate(Automizer, Filter);
    SuiteAggregate G = aggregate(GemCutter, Filter);
    std::string Label = Filter == 0   ? "successful"
                        : Filter == 1 ? "- correct"
                                      : "- incorrect";
    printTableRow({Label, std::to_string(A.Successful),
                   seqver::formatDouble(A.TotalSeconds, 2),
                   std::to_string(A.TotalPeakVisited),
                   std::to_string(A.TotalRounds),
                   std::to_string(G.Successful),
                   seqver::formatDouble(G.TotalSeconds, 2),
                   std::to_string(G.TotalPeakVisited),
                   std::to_string(G.TotalRounds)},
                  Widths);
  }

  // Shape check mirroring the paper's headline: GemCutter solves at least
  // as many instances with no more refinement rounds on the common set.
  int64_t CommonRoundsA = 0, CommonRoundsG = 0;
  for (size_t I = 0; I < Automizer.size(); ++I) {
    if (Automizer[I].successful() && GemCutter[I].successful()) {
      CommonRoundsA += Automizer[I].Rounds;
      CommonRoundsG += GemCutter[I].Rounds;
    }
  }
  std::printf("\ncommonly-solved rounds: Automizer=%lld GemCutter=%lld\n",
              static_cast<long long>(CommonRoundsA),
              static_cast<long long>(CommonRoundsG));

  // Commutativity tier breakdown for GemCutter: how many queries the
  // solver-free static tier settled, and the SMT checks that remained.
  SuiteAggregate G = aggregate(GemCutter);
  double StaticPct =
      G.TotalCommutQueries
          ? 100.0 * static_cast<double>(G.TotalCommutStatic) /
                static_cast<double>(G.TotalCommutQueries)
          : 0.0;
  std::printf("commutativity tiers (GemCutter): queries=%lld static=%lld "
              "(%.1f%%) semantic=%lld smt=%lld\n",
              static_cast<long long>(G.TotalCommutQueries),
              static_cast<long long>(G.TotalCommutStatic), StaticPct,
              static_cast<long long>(G.TotalSemanticChecks),
              static_cast<long long>(G.TotalSmtQueries));
}

/// Races the parallel portfolio against the sequential portfolio's
/// sum-of-orders cost on the small Weaver subset. The exported counters
/// land in the BENCH JSON: parallel_wall_s is real measured wall-clock,
/// sequential_sum_s is what running every order to completion costs, and
/// portfolio_speedup is their ratio (the genuine win of the racing
/// executor — cancellation stops losing orders, so it exceeds 1 even on a
/// single core).
void BM_SuitePortfolioParallel(benchmark::State &State) {
  auto Suite = workloads::weaverLikeSuite();
  Suite.resize(4); // bluetooth 1..4
  double ParallelWall = 0, SequentialSum = 0, AsIfParallel = 0;
  std::vector<RunRecord> ParRecords;
  for (auto _ : State) {
    ParallelWall = SequentialSum = AsIfParallel = 0;
    ParRecords.clear();
    for (const auto &W : Suite) {
      RunRecord Par = runTool(W, "gemcutter-par");
      ParallelWall += Par.WallSeconds;
      AsIfParallel += Par.Seconds;
      ParRecords.push_back(Par);
      // Sequential portfolio: every order runs to completion; its cost is
      // the sum over orders (what the emulation actually pays).
      smt::TermManager TM;
      prog::BuildResult B = prog::buildFromSource(W.Source, TM);
      if (!B.ok())
        continue;
      core::VerifierConfig Config;
      Config.TimeoutSeconds = benchTimeout();
      core::PortfolioResult Seq = core::runPortfolio(*B.Program, Config);
      for (const core::PortfolioEntry &E : Seq.Entries)
        SequentialSum += E.Result.Seconds;
    }
    benchmark::DoNotOptimize(ParallelWall);
  }
  State.counters["parallel_wall_s"] = ParallelWall;
  State.counters["sequential_sum_s"] = SequentialSum;
  State.counters["as_if_parallel_s"] = AsIfParallel;
  State.counters["portfolio_speedup"] =
      ParallelWall > 0 ? SequentialSum / ParallelWall : 0;
  // Hub-merged interning telemetry: every racing worker's private tables
  // contribute (docs/PERF.md), not just the winner's.
  SuiteAggregate Par = aggregate(ParRecords);
  State.counters["intern_hits"] = static_cast<double>(Par.TotalInternHits);
  State.counters["intern_misses"] =
      static_cast<double>(Par.TotalInternMisses);
  State.counters["intern_hit_rate_pct"] = Par.internHitRatePct();
  State.counters["peak_interned_sets"] =
      static_cast<double>(Par.TotalPeakInternedSets);
  State.counters["sleepset_bitset_pct"] = Par.sleepsetBitsetPct();
  // Proof-cache traffic shares the schema with bench_proof_cache; zero
  // here (no CacheDir in the harness configs) unless a future config opts
  // the race into a shared store.
  State.counters["cache_hits"] = static_cast<double>(Par.TotalCacheHits);
  State.counters["cache_misses"] = static_cast<double>(Par.TotalCacheMisses);
  State.counters["rounds_saved_warm"] =
      static_cast<double>(Par.TotalRoundsSavedWarm);
}
BENCHMARK(BM_SuitePortfolioParallel)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_SuiteGemcutterSmall(benchmark::State &State) {
  auto Suite = workloads::weaverLikeSuite();
  Suite.resize(4); // bluetooth 1..4
  SuiteAggregate Last;
  for (auto _ : State) {
    auto Records = runSuite(Suite, "gemcutter");
    benchmark::DoNotOptimize(Records.size());
    Last = aggregate(Records);
  }
  // Exported into --benchmark_out JSON so BENCH_*.json tracks the SMT-query
  // savings of the static commutativity tier over time.
  State.counters["commut_queries"] =
      static_cast<double>(Last.TotalCommutQueries);
  State.counters["commut_static"] =
      static_cast<double>(Last.TotalCommutStatic);
  State.counters["semantic_commut_checks"] =
      static_cast<double>(Last.TotalSemanticChecks);
  State.counters["smt_queries"] = static_cast<double>(Last.TotalSmtQueries);
}
BENCHMARK(BM_SuiteGemcutterSmall)->Unit(benchmark::kMillisecond)->Iterations(1);

} // namespace

int main(int argc, char **argv) {
  std::printf("== Table 1: successfully analysed benchmarks, CPU time, "
              "memory proxy, refinement rounds ==\n");
  std::printf("(per-instance timeout %.0fs; memory proxied by peak DFS "
              "states)\n",
              benchTimeout());
  printSuiteBlock("SV-COMP-like benchmarks", workloads::svcompLikeSuite());
  printSuiteBlock("Weaver-like benchmarks", workloads::weaverLikeSuite());
  std::printf("\n== Microbenchmarks ==\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
