//===- bench/Harness.h - Shared experiment harness ------------------------===//
///
/// \file
/// Common infrastructure for the per-table/per-figure experiment binaries:
/// named tool configurations (Automizer baseline, GemCutter portfolio, the
/// Table 2 variants), suite execution with per-instance timeouts, and table
/// printers. Each bench binary regenerates one table or figure of the
/// paper's evaluation (Sec. 8); see EXPERIMENTS.md for the index.
///
//===----------------------------------------------------------------------===//

#ifndef SEQVER_BENCH_HARNESS_H
#define SEQVER_BENCH_HARNESS_H

#include "core/Portfolio.h"
#include "core/Verifier.h"
#include "workloads/Workloads.h"

#include <string>
#include <vector>

namespace seqver {
namespace bench {

/// One (instance, tool) execution.
struct RunRecord {
  std::string Instance;
  std::string Family;
  bool ExpectedCorrect = true;
  std::string Tool;
  core::Verdict V = core::Verdict::Unknown;
  double Seconds = 0;
  int Rounds = 0;
  size_t ProofSize = 0;
  int64_t PeakVisited = 0;
  /// Commutativity tier breakdown (support/Statistics counters of the
  /// winning run): how the commutativity queries were settled.
  int64_t CommutQueries = 0;
  int64_t CommutSyntactic = 0;
  int64_t CommutStatic = 0;
  int64_t CommutOctagon = 0;
  int64_t CommutKarr = 0;
  int64_t SemanticChecks = 0;
  int64_t SmtQueries = 0;
  /// Proof predicates contributed by octagon seeding (0 unless the tool
  /// enables SeedProof), and the Karr analysis's additional contribution.
  int64_t SeededPredicates = 0;
  int64_t KarrSeeded = 0;
  /// Interning telemetry of the hot-path state tables (docs/PERF.md):
  /// probe hits/misses summed over the per-verifier interners (hub-merged
  /// across workers for gemcutter-par), the largest sleep-set table, and
  /// how many distinct sleep sets used the inline 64/128-bit representation
  /// vs the spilled multi-word one.
  int64_t InternHits = 0;
  int64_t InternMisses = 0;
  int64_t PeakInternedSets = 0;
  int64_t SleepsetInlineSets = 0;
  int64_t SleepsetSpillSets = 0;
  /// Persistent proof-cache traffic (docs/PERSIST.md): all zero unless the
  /// run's VerifierConfig carried a CacheDir (hub-merged across workers for
  /// gemcutter-par, so a shared store counts every racing order's traffic).
  int64_t CacheHits = 0;
  int64_t CacheMisses = 0;
  int64_t CacheSeeded = 0;
  int64_t RoundsSavedWarm = 0;
  int64_t CacheStores = 0;
  /// Portfolio only: name of the winning order.
  std::string BestOrder;
  /// Parallel portfolio only: real wall-clock of the whole race (Seconds
  /// stays the winner's own time, the as-if-parallel aggregate) and the
  /// summed per-order cost the race actually paid.
  double WallSeconds = 0;
  double RaceCostSeconds = 0;

  bool decisive() const { return core::isDecisive(V); }
  /// Decisive and agreeing with ground truth (all tools here are sound, so
  /// a decisive disagreement indicates a harness bug, not a tool answer).
  bool successful() const {
    return decisive() &&
           (V == core::Verdict::Correct) == ExpectedCorrect;
  }
};

/// Per-instance timeout in seconds (environment SEQVER_BENCH_TIMEOUT
/// overrides; default 10).
double benchTimeout();

/// Tool names understood by runTool:
///   automizer            baseline, no reduction (Sec. 8's comparison)
///   gemcutter            portfolio over seq/lockstep/rand(1..3),
///                        sequential as-if-parallel emulation
///   gemcutter-par        the same portfolio raced on the parallel runtime
///                        (real wall-clock in WallSeconds; tier counters are
///                        taken from the hub-merged statistics, i.e. summed
///                        over every racing order, not just the winner)
///   gemcutter-oct        portfolio with octagon proof seeding on top of
///                        the full static tier stack
///   gemcutter-nooct      portfolio with the octagon tier and seeding off —
///                        interval tier only (the Karr tier is off too;
///                        ablation baseline)
///   gemcutter-karr       portfolio with proof seeding (octagon + Karr
///                        atoms) on top of the full static tier stack
///   gemcutter-nokarr     portfolio with the Karr tier and its seeding off
///                        but the octagon tier on (isolates the affine
///                        contribution)
///   seq | lockstep | rand(1) | rand(2) | rand(3)
///                        single preference order, full reduction
///   sleep                portfolio, sleep sets only
///   persistent           portfolio, persistent sets only
///   gemcutter-nops       portfolio without proof-sensitive commutativity
///   seq-nops             seq order without proof-sensitive commutativity
RunRecord runTool(const workloads::WorkloadInstance &W,
                  const std::string &Tool);

/// Runs every instance of Suite under Tool.
std::vector<RunRecord> runSuite(
    const std::vector<workloads::WorkloadInstance> &Suite,
    const std::string &Tool, bool Verbose = false);

/// Simple fixed-width table printer.
void printTableHeader(const std::vector<std::string> &Columns,
                      const std::vector<int> &Widths);
void printTableRow(const std::vector<std::string> &Cells,
                   const std::vector<int> &Widths);

/// Aggregates in the shape of Table 1 rows.
struct SuiteAggregate {
  int Successful = 0;
  double TotalSeconds = 0;
  int64_t TotalPeakVisited = 0;
  int64_t TotalRounds = 0;
  int64_t TotalCommutQueries = 0;
  int64_t TotalCommutStatic = 0;
  int64_t TotalCommutOctagon = 0;
  int64_t TotalCommutKarr = 0;
  int64_t TotalSemanticChecks = 0;
  int64_t TotalSmtQueries = 0;
  int64_t TotalSeededPredicates = 0;
  int64_t TotalKarrSeeded = 0;
  int64_t TotalInternHits = 0;
  int64_t TotalInternMisses = 0;
  int64_t TotalPeakInternedSets = 0;
  int64_t TotalSleepsetInlineSets = 0;
  int64_t TotalSleepsetSpillSets = 0;
  int64_t TotalCacheHits = 0;
  int64_t TotalCacheMisses = 0;
  int64_t TotalCacheSeeded = 0;
  int64_t TotalRoundsSavedWarm = 0;
  int64_t TotalCacheStores = 0;

  /// Intern-probe hit rate in percent (0 when no probes were recorded).
  double internHitRatePct() const {
    int64_t Probes = TotalInternHits + TotalInternMisses;
    return Probes == 0 ? 0.0
                       : 100.0 * static_cast<double>(TotalInternHits) /
                             static_cast<double>(Probes);
  }
  /// Share of distinct sleep sets in the inline 64/128-bit representation.
  double sleepsetBitsetPct() const {
    int64_t Sets = TotalSleepsetInlineSets + TotalSleepsetSpillSets;
    return Sets == 0 ? 0.0
                     : 100.0 * static_cast<double>(TotalSleepsetInlineSets) /
                           static_cast<double>(Sets);
  }
};

/// Aggregate over records, optionally restricted to expected-correct or
/// expected-incorrect instances (Filter: 0 = all, 1 = correct,
/// 2 = incorrect).
SuiteAggregate aggregate(const std::vector<RunRecord> &Records,
                         int Filter = 0);

} // namespace bench
} // namespace seqver

#endif // SEQVER_BENCH_HARNESS_H
