//===- bench/bench_incremental.cpp - Incremental DPLL(T) sessions ---------===//
///
/// Measures what the incremental SMT sessions (smt::Session over a
/// persistent smt::Solver, docs/PERF.md §7) save against the pre-session
/// behaviour of building one throwaway solver per query: every workload is
/// verified twice under the seq preference order — once with
/// VerifierConfig::IncrementalSmt on (the default), once off — and the
/// headline number is the summed `smt_solver_us` of each arm: wall-time
/// spent constructing, encoding and solving, the cost the sessions
/// amortise. Verdicts must agree between the arms; sessions only change
/// how queries are posed, never their meaning.
///
/// Suites: all four tier-1 suites. Unlike bench_commut_oracle there is no
/// reason to drop the bluetooth family here — its refinement-bound Hoare
/// queries are exactly the per-letter sessions' richest workload.
///
/// Writes a flat BENCH_incremental.json (path in argv[1], default
/// BENCH_incremental.json in the working directory) that
/// tools/check_perf.sh diffs against the checked-in baseline at the repo
/// root; dropping below the incremental-savings floor fails the gate.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "program/CfgBuilder.h"
#include "support/Timer.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace seqver;
using namespace seqver::bench;

namespace {

/// Aggregate of one arm over the whole suite.
struct ArmTotals {
  int Successful = 0;
  int64_t SolverUs = 0;     ///< smt_solver_us: construct + encode + solve
  int64_t Queries = 0;      ///< smt_queries (real solves, cache misses)
  int64_t TheoryRounds = 0; ///< smt_theory_rounds
  double WallSeconds = 0;   ///< summed verification wall-clock
};

void accumulate(ArmTotals &T, const workloads::WorkloadInstance &W,
                const core::VerificationResult &R, double Wall) {
  if (core::isDecisive(R.V) &&
      (R.V == core::Verdict::Correct) == W.ExpectedCorrect)
    ++T.Successful;
  T.SolverUs += R.Stats.get("smt_solver_us");
  T.Queries += R.Stats.get("smt_queries");
  T.TheoryRounds += R.Stats.get("smt_theory_rounds");
  T.WallSeconds += Wall;
}

double savedPct(int64_t Fresh, int64_t Incremental) {
  return Fresh <= 0 ? 0.0
                    : 100.0 * static_cast<double>(Fresh - Incremental) /
                          static_cast<double>(Fresh);
}

struct JsonWriter {
  std::FILE *F;
  bool First = true;

  void field(const char *Name, double Value) {
    std::fprintf(F, "%s  \"%s\": %.6g", First ? "" : ",\n", Name, Value);
    First = false;
  }
  void field(const char *Name, int64_t Value) {
    std::fprintf(F, "%s  \"%s\": %lld", First ? "" : ",\n", Name,
                 static_cast<long long>(Value));
    First = false;
  }
};

} // namespace

int main(int argc, char **argv) {
  std::string OutPath = argc > 1 ? argv[1] : "BENCH_incremental.json";

  std::vector<workloads::WorkloadInstance> Suite =
      workloads::svcompLikeSuite();
  std::vector<workloads::WorkloadInstance> Weaver =
      workloads::weaverLikeSuite();
  Suite.insert(Suite.end(), Weaver.begin(), Weaver.end());
  std::vector<workloads::WorkloadInstance> LoopHeavy =
      workloads::loopHeavySuite();
  Suite.insert(Suite.end(), LoopHeavy.begin(), LoopHeavy.end());
  std::vector<workloads::WorkloadInstance> Affine =
      workloads::affineSuite();
  Suite.insert(Suite.end(), Affine.begin(), Affine.end());

  core::VerifierConfig Base;
  Base.TimeoutSeconds = benchTimeout();

  std::printf("== Incremental DPLL(T) sessions (seq order) ==\n");
  std::printf("(per-instance timeout %.0fs; slv = smt_solver_us, the "
              "construct+encode+solve wall-time)\n\n",
              benchTimeout());
  printTableHeader({"instance", "slv-inc", "slv-fresh", "sess", "asolve",
                    "retained", "warm-pvt"},
                   {20, 9, 9, 6, 7, 8, 8});

  ArmTotals Incremental, Fresh;
  int Mismatches = 0;
  int64_t Sessions = 0, AssumptionSolves = 0, Retained = 0, WarmPivots = 0;
  int64_t WarmStarts = 0;
  for (const auto &W : Suite) {
    smt::TermManager TM;
    prog::BuildResult Build = prog::buildFromSource(W.Source, TM);
    if (!Build.ok()) {
      std::fprintf(stderr, "%s: %s\n", W.Name.c_str(), Build.Error.c_str());
      return 1;
    }

    core::VerifierConfig Config = Base;
    Config.IncrementalSmt = true;
    Timer IncClock;
    core::VerificationResult Inc =
        core::runSingleOrder(*Build.Program, Config, "seq");
    accumulate(Incremental, W, Inc, IncClock.seconds());

    Config.IncrementalSmt = false;
    Timer FreshClock;
    core::VerificationResult Fr =
        core::runSingleOrder(*Build.Program, Config, "seq");
    accumulate(Fresh, W, Fr, FreshClock.seconds());

    if (Inc.V != Fr.V) {
      ++Mismatches;
      std::fprintf(stderr, "%s: verdict mismatch (%s incremental, %s "
                           "fresh)\n",
                   W.Name.c_str(), core::verdictName(Inc.V).c_str(),
                   core::verdictName(Fr.V).c_str());
    }
    Sessions += Inc.Stats.get("smt_sessions");
    AssumptionSolves += Inc.Stats.get("smt_assumption_solves");
    Retained += Inc.Stats.get("smt_clauses_retained");
    WarmPivots += Inc.Stats.get("smt_tableau_warm_pivots");
    WarmStarts += Inc.Stats.get("smt_tableau_warm_starts");

    char IncBuf[32], FreshBuf[32];
    std::snprintf(IncBuf, sizeof(IncBuf), "%.3fs",
                  static_cast<double>(Inc.Stats.get("smt_solver_us")) / 1e6);
    std::snprintf(FreshBuf, sizeof(FreshBuf), "%.3fs",
                  static_cast<double>(Fr.Stats.get("smt_solver_us")) / 1e6);
    printTableRow(
        {W.Name, IncBuf, FreshBuf,
         std::to_string(Inc.Stats.get("smt_sessions")),
         std::to_string(Inc.Stats.get("smt_assumption_solves")),
         std::to_string(Inc.Stats.get("smt_clauses_retained")),
         std::to_string(Inc.Stats.get("smt_tableau_warm_pivots"))},
        {20, 9, 9, 6, 7, 8, 8});
  }

  double SavingsPct = savedPct(Fresh.SolverUs, Incremental.SolverUs);
  std::printf("\nsolver wall-seconds: %.3fs incremental, %.3fs fresh "
              "(%.1f%% saved)\n",
              static_cast<double>(Incremental.SolverUs) / 1e6,
              static_cast<double>(Fresh.SolverUs) / 1e6, SavingsPct);
  std::printf("sessions: %lld opened, %lld assumption solve(s), %lld "
              "learned clause(s) retained, %lld warm start(s), %lld warm "
              "pivot(s)\n",
              static_cast<long long>(Sessions),
              static_cast<long long>(AssumptionSolves),
              static_cast<long long>(Retained),
              static_cast<long long>(WarmStarts),
              static_cast<long long>(WarmPivots));
  std::printf("successful: %d/%zu incremental, %d/%zu fresh\n",
              Incremental.Successful, Suite.size(), Fresh.Successful,
              Suite.size());
  if (Mismatches > 0) {
    std::fprintf(stderr, "error: %d verdict mismatch(es)\n", Mismatches);
    return 1;
  }

  std::FILE *F = std::fopen(OutPath.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "error: cannot write %s\n", OutPath.c_str());
    return 1;
  }
  std::fprintf(F, "{\n");
  JsonWriter J{F};
  J.field("schema_version", static_cast<int64_t>(1));
  J.field("instances", static_cast<int64_t>(Suite.size()));
  J.field("successful_incremental",
          static_cast<int64_t>(Incremental.Successful));
  J.field("successful_fresh", static_cast<int64_t>(Fresh.Successful));
  J.field("solver_s_incremental",
          static_cast<double>(Incremental.SolverUs) / 1e6);
  J.field("solver_s_fresh", static_cast<double>(Fresh.SolverUs) / 1e6);
  J.field("incremental_savings_pct", SavingsPct);
  J.field("smt_queries_incremental", Incremental.Queries);
  J.field("smt_queries_fresh", Fresh.Queries);
  J.field("smt_theory_rounds_incremental", Incremental.TheoryRounds);
  J.field("smt_theory_rounds_fresh", Fresh.TheoryRounds);
  J.field("smt_sessions", Sessions);
  J.field("smt_assumption_solves", AssumptionSolves);
  J.field("smt_clauses_retained", Retained);
  J.field("smt_tableau_warm_pivots", WarmPivots);
  J.field("smt_tableau_warm_starts", WarmStarts);
  J.field("wall_s_incremental", Incremental.WallSeconds);
  J.field("wall_s_fresh", Fresh.WallSeconds);
  std::fprintf(F, "\n}\n");
  std::fclose(F);
  std::printf("wrote %s\n", OutPath.c_str());
  return 0;
}
