//===- bench/bench_octagon_seeding.cpp - Octagon tier + seeding ablation ---===//
///
/// Measures what the relational invariant engine buys on loop-heavy
/// workloads: GemCutter with the octagon commutativity tier plus proof
/// seeding (`gemcutter-oct`) against the interval-only, unseeded stack
/// (`gemcutter-nooct`). Expected shape on programs whose proofs hinge on
/// relational loop invariants (total == i, a - b <= 1): fewer SMT
/// commutativity checks (the octagon tier discharges conditional queries
/// the interval tier cannot) and fewer refinement rounds (seeded invariant
/// atoms let round 0 start from the loop invariant instead of rediscovering
/// it predicate by predicate).
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "support/StringUtils.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace seqver;
using namespace seqver::bench;

namespace {

std::vector<workloads::WorkloadInstance> loopSuite() {
  std::vector<workloads::WorkloadInstance> Suite =
      workloads::loopHeavySuite();
  // A slice of the bluetooth family keeps the comparison honest on
  // workloads where octagons are *not* expected to help much.
  std::vector<workloads::WorkloadInstance> Weaver =
      workloads::weaverLikeSuite();
  for (const auto &W : Weaver)
    if (W.Family == "bluetooth" && Suite.size() < 11)
      Suite.push_back(W);
  return Suite;
}

void printComparison(const std::vector<RunRecord> &Oct,
                     const std::vector<RunRecord> &NoOct) {
  printTableHeader({"instance", "oct", "no-oct", "rd-oct", "rd-base",
                    "sem-oct", "sem-base", "oct-tier", "seeds"},
                   {20, 9, 9, 7, 7, 8, 8, 8, 6});
  for (size_t I = 0; I < Oct.size() && I < NoOct.size(); ++I) {
    const RunRecord &A = Oct[I];
    const RunRecord &B = NoOct[I];
    printTableRow({A.Instance, core::verdictName(A.V),
                   core::verdictName(B.V), std::to_string(A.Rounds),
                   std::to_string(B.Rounds),
                   std::to_string(A.SemanticChecks),
                   std::to_string(B.SemanticChecks),
                   std::to_string(A.CommutOctagon),
                   std::to_string(A.SeededPredicates)},
                  {20, 9, 9, 7, 7, 8, 8, 8, 6});
  }
}

/// Suite-level ablation; counters land in the --benchmark_out JSON so
/// BENCH_*.json tracks the rounds and SMT-query savings over time.
void BM_LoopHeavyOctagonSeeding(benchmark::State &State) {
  auto Suite = loopSuite();
  SuiteAggregate Oct, Base;
  for (auto _ : State) {
    auto OctRecords = runSuite(Suite, "gemcutter-oct");
    auto BaseRecords = runSuite(Suite, "gemcutter-nooct");
    benchmark::DoNotOptimize(OctRecords.size());
    Oct = aggregate(OctRecords);
    Base = aggregate(BaseRecords);
  }
  State.counters["rounds_octagon"] = static_cast<double>(Oct.TotalRounds);
  State.counters["rounds_baseline"] = static_cast<double>(Base.TotalRounds);
  State.counters["rounds_saved"] =
      static_cast<double>(Base.TotalRounds - Oct.TotalRounds);
  State.counters["semantic_checks_octagon"] =
      static_cast<double>(Oct.TotalSemanticChecks);
  State.counters["semantic_checks_baseline"] =
      static_cast<double>(Base.TotalSemanticChecks);
  State.counters["smt_queries_saved"] =
      static_cast<double>(Base.TotalSmtQueries - Oct.TotalSmtQueries);
  State.counters["commut_octagon"] =
      static_cast<double>(Oct.TotalCommutOctagon);
  State.counters["seeded_predicates"] =
      static_cast<double>(Oct.TotalSeededPredicates);
}
BENCHMARK(BM_LoopHeavyOctagonSeeding)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

} // namespace

int main(int argc, char **argv) {
  std::printf("== Ablation: octagon commutativity tier + proof seeding ==\n");
  std::printf("(per-instance timeout %.0fs)\n\n", benchTimeout());

  auto Suite = loopSuite();
  auto Oct = runSuite(Suite, "gemcutter-oct");
  auto NoOct = runSuite(Suite, "gemcutter-nooct");
  printComparison(Oct, NoOct);

  SuiteAggregate A = aggregate(Oct);
  SuiteAggregate B = aggregate(NoOct);
  std::printf("\nsolved: %d with octagons+seeding, %d interval-only\n",
              A.Successful, B.Successful);
  std::printf("refinement rounds: %lld vs %lld (%lld saved)\n",
              static_cast<long long>(A.TotalRounds),
              static_cast<long long>(B.TotalRounds),
              static_cast<long long>(B.TotalRounds - A.TotalRounds));
  std::printf("semantic commutativity checks: %lld vs %lld\n",
              static_cast<long long>(A.TotalSemanticChecks),
              static_cast<long long>(B.TotalSemanticChecks));
  std::printf("smt queries: %lld vs %lld\n",
              static_cast<long long>(A.TotalSmtQueries),
              static_cast<long long>(B.TotalSmtQueries));
  std::printf("octagon-settled queries: %lld, seeded predicates: %lld\n",
              static_cast<long long>(A.TotalCommutOctagon),
              static_cast<long long>(A.TotalSeededPredicates));

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
