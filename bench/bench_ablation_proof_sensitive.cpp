//===- bench/bench_ablation_proof_sensitive.cpp - Sec. 8 ablation ----------===//
///
/// Regenerates the proof-sensitivity ablation of Sec. 8: GemCutter with and
/// without proof-sensitive (conditional) commutativity. The paper reports:
/// without it, fewer programs are analysed, average proof size grows by a
/// few percent, total refinement rounds grow, time per round stays roughly
/// the same, and memory increases.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "support/StringUtils.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace seqver;
using namespace seqver::bench;

namespace {

struct Agg {
  int Solved = 0;
  double ProofTotal = 0;
  int ProofCount = 0;
  int64_t Rounds = 0;
  double Time = 0;
  int64_t PeakStates = 0;
};

Agg summarize(const std::vector<RunRecord> &Records) {
  Agg Out;
  for (const RunRecord &R : Records) {
    if (!R.successful())
      continue;
    ++Out.Solved;
    Out.Rounds += R.Rounds;
    Out.Time += R.Seconds;
    Out.PeakStates += R.PeakVisited;
    if (R.V == core::Verdict::Correct) {
      Out.ProofTotal += static_cast<double>(R.ProofSize);
      ++Out.ProofCount;
    }
  }
  return Out;
}

double pct(double With, double Without) {
  if (With == 0)
    return 0;
  return (Without - With) / With * 100.0;
}

} // namespace

namespace {

/// Microbenchmark: one portfolio verification of a representative instance.
void BM_PortfolioMutexSafe3(benchmark::State &State) {
  workloads::WorkloadInstance W;
  for (const auto &Inst : workloads::svcompLikeSuite())
    if (Inst.Name == "mutex_safe_3")
      W = Inst;
  for (auto _ : State) {
    RunRecord R = runTool(W, "gemcutter");
    benchmark::DoNotOptimize(R.Rounds);
  }
}
BENCHMARK(BM_PortfolioMutexSafe3)->Unit(benchmark::kMillisecond);

} // namespace


int main(int argc, char **argv) {
  std::printf("== Ablation: proof-sensitive commutativity (Sec. 8) ==\n\n");
  const std::vector<std::pair<std::string,
                              std::vector<workloads::WorkloadInstance>>>
      Suites = {{"SV-COMP", workloads::svcompLikeSuite()},
                {"Weaver", workloads::weaverLikeSuite()}};

  for (const auto &[SuiteName, Suite] : Suites) {
    Agg With = summarize(runSuite(Suite, "gemcutter"));
    Agg Without = summarize(runSuite(Suite, "gemcutter-nops"));
    std::printf("-- %s --\n", SuiteName.c_str());
    printTableHeader({"", "with", "without", "delta%"}, {22, 12, 12, 9});
    auto Row = [&](const char *Label, double W, double WO, int Decimals) {
      printTableRow({Label, formatDouble(W, Decimals),
                     formatDouble(WO, Decimals),
                     formatDouble(pct(W, WO), 2)},
                    {22, 12, 12, 9});
    };
    Row("solved", With.Solved, Without.Solved, 0);
    Row("avg proof size",
        With.ProofCount ? With.ProofTotal / With.ProofCount : 0,
        Without.ProofCount ? Without.ProofTotal / Without.ProofCount : 0, 2);
    Row("total rounds", static_cast<double>(With.Rounds),
        static_cast<double>(Without.Rounds), 0);
    Row("time/round (s)",
        With.Rounds ? With.Time / static_cast<double>(With.Rounds) : 0,
        Without.Rounds ? Without.Time / static_cast<double>(Without.Rounds)
                       : 0,
        4);
    Row("peak states (sum)", static_cast<double>(With.PeakStates),
        static_cast<double>(Without.PeakStates), 0);
    std::printf("\n");
  }
  std::printf("paper's shape: without proof-sensitivity, fewer solved / "
              "larger proofs / more rounds / more memory.\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
